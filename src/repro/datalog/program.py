"""Core data model of the generic datalog substrate.

This module deliberately keeps the representation minimal: predicates are
strings, tuples are Python tuples of hashable values, and variables are
:class:`Var` instances.  The heavier WebdamLog-specific machinery (peers,
relation variables, delegation) lives in :mod:`repro.core` and maps onto this
substrate for purely local evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union


@dataclass(frozen=True)
class Var:
    """A datalog variable, e.g. ``Var("X")``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


#: A term of the substrate: a variable or a constant Python value.
DatalogTerm = Union[Var, str, int, float, bool, bytes, None]


@dataclass(frozen=True)
class DatalogAtom:
    """An atom ``predicate(t1, ..., tn)``, possibly negated."""

    predicate: str
    terms: Tuple[DatalogTerm, ...]
    negated: bool = False

    def __post_init__(self):
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def arity(self) -> int:
        """Number of terms."""
        return len(self.terms)

    def variables(self) -> Tuple[Var, ...]:
        """Variables of the atom in order of first occurrence."""
        seen: List[Var] = []
        for term in self.terms:
            if isinstance(term, Var) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def is_ground(self) -> bool:
        """``True`` when the atom contains no variables."""
        return not any(isinstance(term, Var) for term in self.terms)

    def substitute(self, bindings: Dict[Var, DatalogTerm]) -> "DatalogAtom":
        """Apply a substitution to the atom's terms."""
        new_terms = tuple(
            bindings.get(term, term) if isinstance(term, Var) else term for term in self.terms
        )
        return DatalogAtom(self.predicate, new_terms, self.negated)

    def negate(self) -> "DatalogAtom":
        """The negated version of this atom."""
        return DatalogAtom(self.predicate, self.terms, True)

    def __str__(self) -> str:
        prefix = "not " if self.negated else ""
        rendered = ", ".join(str(t) for t in self.terms)
        return f"{prefix}{self.predicate}({rendered})"


def atom(predicate: str, *terms: DatalogTerm, negated: bool = False) -> DatalogAtom:
    """Convenience constructor: strings starting with ``?`` become variables."""
    converted = tuple(
        Var(t[1:]) if isinstance(t, str) and t.startswith("?") else t for t in terms
    )
    return DatalogAtom(predicate, converted, negated)


@dataclass(frozen=True)
class AggregateTerm:
    """An aggregate expression appearing in a rule head, e.g. ``count(?X)``."""

    function: str
    variable: Var

    def __str__(self) -> str:
        return f"{self.function}({self.variable})"


@dataclass(frozen=True)
class DatalogRule:
    """A rule ``head :- body`` over :class:`DatalogAtom`.

    ``head_aggregates`` optionally maps head positions to
    :class:`AggregateTerm`; when present the rule is an aggregate rule and is
    evaluated by grouping on the non-aggregated head variables.
    """

    head: DatalogAtom
    body: Tuple[DatalogAtom, ...]
    head_aggregates: Tuple[Tuple[int, AggregateTerm], ...] = ()

    def __post_init__(self):
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))
        if self.head.negated:
            raise ValueError("rule head must not be negated")

    def variables(self) -> Tuple[Var, ...]:
        """Every variable of the rule in order of first occurrence."""
        seen: List[Var] = []
        for a in (self.head, *self.body):
            for var in a.variables():
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def aggregate_positions(self) -> FrozenSet[int]:
        """Head positions computed by aggregation (empty for plain rules)."""
        return frozenset(position for position, _ in self.head_aggregates)

    def group_positions(self) -> Tuple[int, ...]:
        """Head positions forming the group-by key, in head order."""
        aggregated = self.aggregate_positions()
        return tuple(index for index in range(self.head.arity)
                     if index not in aggregated)

    def positive_body(self) -> Tuple[DatalogAtom, ...]:
        """The positive body literals."""
        return tuple(a for a in self.body if not a.negated)

    def negative_body(self) -> Tuple[DatalogAtom, ...]:
        """The negated body literals."""
        return tuple(a for a in self.body if a.negated)

    def check_safety(self) -> None:
        """Raise ``ValueError`` if the rule is unsafe.

        Every head variable and every variable of a negated literal must
        occur in some positive body literal.
        """
        positive_vars: Set[Var] = set()
        for a in self.positive_body():
            positive_vars.update(a.variables())
        for var in self.head.variables():
            if var not in positive_vars:
                raise ValueError(f"unsafe rule: head variable {var} not bound: {self}")
        for a in self.negative_body():
            for var in a.variables():
                if var not in positive_vars:
                    raise ValueError(f"unsafe rule: negated variable {var} not bound: {self}")

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        return f"{self.head} :- {body}"


def rule(head: DatalogAtom, *body: DatalogAtom) -> DatalogRule:
    """Convenience constructor for :class:`DatalogRule`."""
    return DatalogRule(head, tuple(body))


class Database:
    """A mutable set of ground facts, partitioned by predicate."""

    def __init__(self, facts: Optional[Iterable[Tuple[str, Tuple]]] = None):
        self._relations: Dict[str, Set[Tuple]] = {}
        if facts:
            for predicate, row in facts:
                self.add(predicate, row)

    def add(self, predicate: str, row: Sequence) -> bool:
        """Add a tuple; return ``True`` if it was new."""
        rows = self._relations.setdefault(predicate, set())
        row = tuple(row)
        if row in rows:
            return False
        rows.add(row)
        return True

    def add_atom(self, ground_atom: DatalogAtom) -> bool:
        """Add a ground atom; return ``True`` if it was new."""
        if not ground_atom.is_ground():
            raise ValueError(f"cannot store non-ground atom {ground_atom}")
        return self.add(ground_atom.predicate, ground_atom.terms)

    def remove(self, predicate: str, row: Sequence) -> bool:
        """Remove a tuple; return ``True`` if it was present."""
        rows = self._relations.get(predicate)
        if rows is None:
            return False
        row = tuple(row)
        if row in rows:
            rows.remove(row)
            return True
        return False

    def contains(self, predicate: str, row: Sequence) -> bool:
        """``True`` when the tuple is present."""
        return tuple(row) in self._relations.get(predicate, set())

    def relation(self, predicate: str) -> FrozenSet[Tuple]:
        """Frozen snapshot of one predicate's tuples."""
        return frozenset(self._relations.get(predicate, set()))

    def predicates(self) -> Tuple[str, ...]:
        """Sorted tuple of predicates that have at least one tuple."""
        return tuple(sorted(p for p, rows in self._relations.items() if rows))

    def size(self, predicate: Optional[str] = None) -> int:
        """Number of tuples of one predicate, or of the whole database."""
        if predicate is not None:
            return len(self._relations.get(predicate, set()))
        return sum(len(rows) for rows in self._relations.values())

    def copy(self) -> "Database":
        """Deep copy of the database."""
        clone = Database()
        clone._relations = {p: set(rows) for p, rows in self._relations.items()}
        return clone

    def merge(self, other: "Database") -> int:
        """Add every tuple of ``other``; return the number of new tuples."""
        added = 0
        for predicate, rows in other._relations.items():
            for row in rows:
                if self.add(predicate, row):
                    added += 1
        return added

    def __iter__(self) -> Iterator[Tuple[str, Tuple]]:
        for predicate, rows in self._relations.items():
            for row in rows:
                yield predicate, row

    def __len__(self) -> int:
        return self.size()

    def __eq__(self, other) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {p: rows for p, rows in self._relations.items() if rows}
        theirs = {p: rows for p, rows in other._relations.items() if rows}
        return mine == theirs


@dataclass
class DatalogProgram:
    """A set of rules together with the partition into EDB and IDB predicates."""

    rules: List[DatalogRule] = field(default_factory=list)

    def add_rule(self, new_rule: DatalogRule) -> "DatalogProgram":
        """Append a rule (validated for safety) and return ``self``."""
        new_rule.check_safety()
        self.rules.append(new_rule)
        return self

    def idb_predicates(self) -> Set[str]:
        """Predicates defined by at least one rule head."""
        return {r.head.predicate for r in self.rules}

    def edb_predicates(self) -> Set[str]:
        """Predicates that occur only in rule bodies."""
        idb = self.idb_predicates()
        edb: Set[str] = set()
        for r in self.rules:
            for a in r.body:
                if a.predicate not in idb:
                    edb.add(a.predicate)
        return edb

    def rules_for(self, predicate: str) -> List[DatalogRule]:
        """The rules whose head predicate is ``predicate``."""
        return [r for r in self.rules if r.head.predicate == predicate]

    def check_safety(self) -> None:
        """Validate every rule."""
        for r in self.rules:
            r.check_safety()

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[DatalogRule]:
        return iter(self.rules)
