"""Predicate dependency analysis and stratification.

A datalog program with negation is *stratifiable* when its predicate
dependency graph has no cycle that traverses a negative edge.  Stratification
assigns each IDB predicate to a stratum such that

* if ``p`` depends positively on ``q`` then ``stratum(p) >= stratum(q)``, and
* if ``p`` depends negatively on ``q`` then ``stratum(p) > stratum(q)``.

Evaluating strata in increasing order with negation-as-failure against fully
computed lower strata yields the standard perfect-model semantics.

The WebdamLog engine reuses this module to stratify each peer's *local*
rules; the paper notes that negation is part of the language even though the
original prototype did not implement it, so supporting it here is one of the
"optional/extension" features of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from repro.datalog.program import DatalogProgram, DatalogRule


class StratificationError(Exception):
    """Raised when a program has a cycle through negation."""


@dataclass
class DependencyGraph:
    """The predicate dependency graph of a datalog program.

    Nodes are predicate names.  An edge ``q -> p`` means that ``p`` depends
    on ``q`` (``q`` appears in the body of a rule defining ``p``); the edge is
    marked negative when ``q`` appears under negation.
    """

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    @classmethod
    def from_rules(cls, rules: Iterable[DatalogRule]) -> "DependencyGraph":
        """Build the dependency graph of ``rules``."""
        dependency = cls()
        graph = dependency.graph
        for r in rules:
            head = r.head.predicate
            graph.add_node(head)
            for atom in r.body:
                graph.add_node(atom.predicate)
                existing = graph.get_edge_data(atom.predicate, head, default=None)
                negative = atom.negated or (existing is not None and existing.get("negative"))
                graph.add_edge(atom.predicate, head, negative=bool(negative))
        return dependency

    @classmethod
    def from_program(cls, program: DatalogProgram) -> "DependencyGraph":
        """Build the dependency graph of a program."""
        return cls.from_rules(program.rules)

    def predicates(self) -> Tuple[str, ...]:
        """Sorted node list."""
        return tuple(sorted(self.graph.nodes))

    def depends_on(self, predicate: str) -> Set[str]:
        """Predicates that ``predicate`` depends on (directly)."""
        return set(self.graph.predecessors(predicate))

    def negative_edges(self) -> Set[Tuple[str, str]]:
        """Edges marked negative, as ``(body_predicate, head_predicate)`` pairs."""
        return {
            (u, v) for u, v, data in self.graph.edges(data=True) if data.get("negative")
        }

    def is_recursive(self, predicate: str) -> bool:
        """``True`` when ``predicate`` participates in a dependency cycle."""
        try:
            cycle_nodes = set()
            for component in nx.strongly_connected_components(self.graph):
                if len(component) > 1:
                    cycle_nodes.update(component)
                elif component and self.graph.has_edge(next(iter(component)), next(iter(component))):
                    cycle_nodes.update(component)
            return predicate in cycle_nodes
        except nx.NetworkXError:  # pragma: no cover - defensive
            return False

    def has_negative_cycle(self) -> bool:
        """``True`` when some strongly connected component contains a negative edge."""
        negative = self.negative_edges()
        if not negative:
            return False
        for component in nx.strongly_connected_components(self.graph):
            members = set(component)
            for u, v in negative:
                if u in members and v in members:
                    return True
        return False

    def stratify(self) -> Dict[str, int]:
        """Assign a stratum number to every predicate.

        Raises
        ------
        StratificationError
            When the program is not stratifiable.
        """
        if self.has_negative_cycle():
            raise StratificationError(
                "program is not stratifiable: a recursive cycle traverses negation"
            )
        strata: Dict[str, int] = {node: 0 for node in self.graph.nodes}
        node_count = self.graph.number_of_nodes()
        changed = True
        iterations = 0
        while changed:
            changed = False
            iterations += 1
            if iterations > node_count * node_count + 2:
                # The negative-cycle check should prevent this.
                raise StratificationError("stratification failed to converge")
            for u, v, data in self.graph.edges(data=True):
                required = strata[u] + (1 if data.get("negative") else 0)
                if strata[v] < required:
                    strata[v] = required
                    changed = True
        return strata


def stratify(program: DatalogProgram) -> List[List[DatalogRule]]:
    """Partition the rules of ``program`` into an ordered list of strata.

    Rules are grouped by the stratum of their head predicate, and the groups
    are returned in increasing stratum order.  Evaluating the groups in order
    (completing each fixpoint before moving on) implements stratified
    negation.
    """
    dependency = DependencyGraph.from_program(program)
    strata_of = dependency.stratify()
    by_stratum: Dict[int, List[DatalogRule]] = {}
    for r in program.rules:
        by_stratum.setdefault(strata_of.get(r.head.predicate, 0), []).append(r)
    return [by_stratum[s] for s in sorted(by_stratum)]


def condensation_order(rules: Sequence[DatalogRule]) -> List[List[str]]:
    """Topological order of the strongly-connected components of the dependency graph.

    Useful for evaluating non-recursive portions of a program predicate by
    predicate; returned as a list of components (each a list of predicates)
    in evaluation order.
    """
    dependency = DependencyGraph.from_rules(rules)
    condensed = nx.condensation(dependency.graph)
    order: List[List[str]] = []
    for node in nx.topological_sort(condensed):
        order.append(sorted(condensed.nodes[node]["members"]))
    return order
