"""Naive bottom-up evaluation.

The naive evaluator recomputes every rule against the *whole* database on
every iteration until no new facts are produced.  It is the reference
implementation: simple enough to be obviously correct, and used by the test
suite and the ``ENGINE`` benchmark as the baseline that the seminaive
evaluator must agree with (and beat).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.datalog.aggregation import apply_head_aggregates
from repro.datalog.indexes import Bindings, IndexPool, match_atom, negated_match_exists
from repro.datalog.program import Database, DatalogAtom, DatalogProgram, DatalogRule, Var
from repro.datalog.stratification import stratify


@dataclass
class EvaluationStats:
    """Counters describing one fixpoint computation."""

    iterations: int = 0
    rule_firings: int = 0
    derived_facts: int = 0

    def merge(self, other: "EvaluationStats") -> "EvaluationStats":
        """Accumulate counters from another stats object."""
        self.iterations += other.iterations
        self.rule_firings += other.rule_firings
        self.derived_facts += other.derived_facts
        return self


def evaluate_rule(rule: DatalogRule, database: Database,
                  pool: Optional[IndexPool] = None,
                  delta_predicate: Optional[str] = None,
                  delta_rows: Optional[Iterable[Tuple]] = None) -> List[DatalogAtom]:
    """Evaluate one rule against ``database`` and return the derived head atoms.

    ``delta_predicate``/``delta_rows`` implement the seminaive trick: when
    given, one occurrence of ``delta_predicate`` in the body is restricted to
    ``delta_rows`` (the caller invokes this function once per occurrence).
    Negated literals are always evaluated against the full database, which is
    sound because negation only refers to lower strata.
    """
    derived: List[DatalogAtom] = []
    delta_used = [False]

    def evaluate_from(literal_index: int, bindings: Bindings) -> None:
        if literal_index == len(rule.body):
            if delta_predicate is not None and not delta_used[0]:
                return
            head = rule.head.substitute(bindings)
            if head.is_ground():
                derived.append(head)
            return
        literal = rule.body[literal_index]
        if literal.negated:
            if not negated_match_exists(literal, database, bindings, pool):
                evaluate_from(literal_index + 1, bindings)
            return
        use_delta_here = (
            delta_predicate is not None
            and literal.predicate == delta_predicate
            and not delta_used[0]
        )
        if use_delta_here:
            delta_used[0] = True
            for extended in match_atom(literal, database, bindings, pool,
                                       rows_override=delta_rows):
                evaluate_from(literal_index + 1, extended)
            delta_used[0] = False
            # Also allow the non-delta occurrence so that later occurrences of
            # the delta predicate may take the delta role instead.
            if _occurrences_after(rule, literal_index, delta_predicate):
                for extended in match_atom(literal, database, bindings, pool):
                    evaluate_from(literal_index + 1, extended)
        else:
            for extended in match_atom(literal, database, bindings, pool):
                evaluate_from(literal_index + 1, extended)

    evaluate_from(0, {})
    if rule.head_aggregates:
        return apply_head_aggregates(rule, derived)
    return derived


def _occurrences_after(rule: DatalogRule, index: int, predicate: str) -> bool:
    """``True`` when ``predicate`` occurs positively in the body after position ``index``."""
    for literal in rule.body[index + 1:]:
        if not literal.negated and literal.predicate == predicate:
            return True
    return False


class NaiveEvaluator:
    """Naive (full recomputation) stratified fixpoint evaluation."""

    def __init__(self, program: DatalogProgram):
        program.check_safety()
        self.program = program
        self._strata = stratify(program)

    def evaluate(self, database: Database) -> EvaluationStats:
        """Run the program to fixpoint, mutating ``database`` in place."""
        stats = EvaluationStats()
        for stratum_rules in self._strata:
            stats.merge(self._fixpoint(stratum_rules, database))
        return stats

    def _fixpoint(self, rules: List[DatalogRule], database: Database) -> EvaluationStats:
        stats = EvaluationStats()
        changed = True
        while changed:
            changed = False
            stats.iterations += 1
            pool = IndexPool(database)
            new_atoms: List[DatalogAtom] = []
            for r in rules:
                produced = evaluate_rule(r, database, pool)
                stats.rule_firings += 1
                new_atoms.extend(produced)
            for head in new_atoms:
                if database.add_atom(head):
                    stats.derived_facts += 1
                    changed = True
        return stats

    def run(self, database: Database) -> Database:
        """Evaluate on a copy of ``database`` and return the augmented copy."""
        result = database.copy()
        self.evaluate(result)
        return result
