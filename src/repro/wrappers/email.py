"""A simulated email service and its WebdamLog wrapper.

The Wepic transfer rule writes facts into a relation whose *name* is the
recipient's preferred protocol::

    $protocol@$attendee($attendee, $name, $id, $owner) :-
        selectedAttendee@Jules($attendee),
        communicate@$attendee($protocol),
        selectedPictures@Jules($name, $id, $owner)

An attendee whose ``communicate`` relation says ``"email"`` therefore
receives the transferred pictures as facts of ``email@<attendee>``.  The
:class:`EmailWrapper` attached to that peer watches this relation and turns
every fact into a message delivered by the :class:`EmailService`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import WrapperError
from repro.core.facts import Fact
from repro.core.schema import RelationSchema
from repro.wrappers.base import RelationWatchingWrapper


@dataclass(frozen=True)
class EmailMessage:
    """A message delivered by the simulated email service."""

    message_id: int
    sender: str
    recipient: str
    subject: str
    body: str


class EmailService:
    """An in-memory mail service with one mailbox per address."""

    def __init__(self):
        self._mailboxes: Dict[str, List[EmailMessage]] = {}
        self._counter = itertools.count(1)
        self.sent_count = 0

    def register(self, address: str) -> None:
        """Create a mailbox (idempotent)."""
        self._mailboxes.setdefault(address, [])

    def addresses(self) -> Tuple[str, ...]:
        """Registered addresses, sorted."""
        return tuple(sorted(self._mailboxes))

    def send(self, sender: str, recipient: str, subject: str, body: str) -> EmailMessage:
        """Deliver a message to ``recipient`` (mailbox created on demand)."""
        if not recipient:
            raise WrapperError("email recipient must be non-empty")
        self.register(recipient)
        message = EmailMessage(message_id=next(self._counter), sender=sender,
                               recipient=recipient, subject=subject, body=body)
        self._mailboxes[recipient].append(message)
        self.sent_count += 1
        return message

    def inbox(self, address: str) -> Tuple[EmailMessage, ...]:
        """Messages delivered to ``address``, oldest first."""
        return tuple(self._mailboxes.get(address, ()))

    def inbox_size(self, address: str) -> int:
        """Number of messages in one mailbox."""
        return len(self._mailboxes.get(address, ()))


class EmailWrapper(RelationWatchingWrapper):
    """Send an email for every fact appearing in ``email@<host peer>``.

    The watched facts are expected to look like the paper's transfer rule
    output — ``email@attendee(attendee, pictureName, pictureId, owner)`` —
    but any arity is accepted: the first value is the recipient address and
    the rest become the body.
    """

    service_name = "email"
    watched_relation = "email"

    def __init__(self, service: EmailService, sender_address: Optional[str] = None):
        super().__init__()
        self.service = service
        self.sender_address = sender_address

    def exported_schemas(self) -> Tuple[RelationSchema, ...]:
        peer_name = self.peer.name if self.peer is not None else "peer"
        return (
            RelationSchema(name=self.watched_relation, peer=peer_name,
                           columns=("recipient", "name", "id", "owner"),
                           persistent=True),
        )

    def attach(self, peer) -> None:
        self._peer = peer
        peer.declare(RelationSchema(
            name=self.watched_relation, peer=peer.name,
            columns=("recipient", "name", "id", "owner"),
        ))
        if self.sender_address is None:
            self.sender_address = f"{peer.name}@wepic.example"
        self.service.register(self.sender_address)

    def handle_fact(self, peer, fact: Fact) -> None:
        if not fact.values:
            raise WrapperError(f"cannot email empty fact {fact}")
        recipient = str(fact.values[0])
        if "@" not in recipient:
            recipient = f"{recipient}@wepic.example"
        payload = ", ".join(str(v) for v in fact.values[1:])
        self.service.send(
            sender=self.sender_address or f"{peer.name}@wepic.example",
            recipient=recipient,
            subject=f"[Wepic] pictures from {peer.name}",
            body=payload,
        )
