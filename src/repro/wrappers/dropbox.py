"""A simulated Dropbox service and its WebdamLog wrapper.

The paper's introduction motivates WebdamLog with a user whose data is spread
across a blog, Facebook, Dropbox, a smartphone and a laptop.  The Dropbox
wrapper exposes one user's folder as a pseudo-peer::

    files@<user>Dropbox($path, $name, $size)
    sharedLinks@<user>Dropbox($path, $url)

Facts inserted into ``files@<user>Dropbox`` by rules (e.g. "copy every
5-star picture to my Dropbox") are uploaded to the simulated service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.core.errors import WrapperError
from repro.core.facts import Fact
from repro.core.schema import RelationSchema
from repro.wrappers.base import PseudoPeerWrapper


@dataclass(frozen=True)
class DropboxFile:
    """A file stored by the simulated Dropbox service."""

    owner: str
    path: str
    name: str
    size: int


class DropboxService:
    """An in-memory file store with per-user folders and shareable links."""

    def __init__(self):
        self._files: Dict[Tuple[str, str], DropboxFile] = {}
        self._links: Dict[Tuple[str, str], str] = {}

    def upload(self, owner: str, path: str, name: str, size: int) -> DropboxFile:
        """Store (or overwrite) a file in ``owner``'s folder."""
        if not path.startswith("/"):
            raise WrapperError(f"Dropbox path must be absolute, got {path!r}")
        record = DropboxFile(owner=owner, path=path, name=name, size=int(size))
        self._files[(owner, path)] = record
        return record

    def delete(self, owner: str, path: str) -> bool:
        """Delete a file; returns ``True`` when it existed."""
        removed = self._files.pop((owner, path), None) is not None
        self._links.pop((owner, path), None)
        return removed

    def files_of(self, owner: str) -> Tuple[DropboxFile, ...]:
        """Every file in ``owner``'s folder, sorted by path."""
        return tuple(sorted((f for (o, _), f in self._files.items() if o == owner),
                            key=lambda f: f.path))

    def get(self, owner: str, path: str) -> Optional[DropboxFile]:
        """Look up one file."""
        return self._files.get((owner, path))

    def share(self, owner: str, path: str) -> str:
        """Create (or return) a shareable link for a file."""
        if (owner, path) not in self._files:
            raise WrapperError(f"cannot share non-existent file {path!r}")
        link = self._links.get((owner, path))
        if link is None:
            link = f"https://dropbox.example/s/{owner}{path.replace('/', '-')}"
            self._links[(owner, path)] = link
        return link

    def links_of(self, owner: str) -> Tuple[Tuple[str, str], ...]:
        """Every ``(path, url)`` pair shared by ``owner``, sorted by path."""
        return tuple(sorted(((path, url) for (o, path), url in self._links.items()
                             if o == owner)))


class DropboxWrapper(PseudoPeerWrapper):
    """Expose one user's Dropbox folder as a pseudo-peer ``<user>Dropbox``."""

    service_name = "dropbox"
    writable_relations = ("files",)

    def __init__(self, service: DropboxService, user: str,
                 peer_name: Optional[str] = None):
        super().__init__()
        self.service = service
        self.user = user
        self.peer_name = peer_name or f"{user}Dropbox"

    def exported_schemas(self) -> Tuple[RelationSchema, ...]:
        return (
            RelationSchema(name="files", peer=self.peer_name,
                           columns=("path", "name", "size")),
            RelationSchema(name="sharedLinks", peer=self.peer_name,
                           columns=("path", "url")),
        )

    def service_facts(self) -> Set[Fact]:
        facts: Set[Fact] = set()
        for record in self.service.files_of(self.user):
            facts.add(Fact("files", self.peer_name, (record.path, record.name, record.size)))
        for path, url in self.service.links_of(self.user):
            facts.add(Fact("sharedLinks", self.peer_name, (path, url)))
        return facts

    def push_to_service(self, fact: Fact) -> None:
        if fact.relation != "files" or len(fact.values) != 3:
            raise WrapperError(f"cannot push fact {fact} to Dropbox")
        path, name, size = fact.values
        path = str(path)
        if not path.startswith("/"):
            path = "/" + path
        self.service.upload(owner=self.user, path=path, name=str(name),
                            size=int(size) if size is not None else 0)
