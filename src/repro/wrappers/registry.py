"""A registry of wrappers, keyed by the pseudo-peer or host peer they serve.

The Wepic scenario builder uses the registry to keep track of which simulated
services back which peers, so that tests and benchmarks can reach into the
services (e.g. "how many photos did the SigmodFB group end up with?") without
having to thread the service objects around by hand.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.wrappers.base import Wrapper


class WrapperRegistry:
    """Maps peer names to the wrappers attached to them."""

    def __init__(self):
        self._wrappers: Dict[str, list] = {}

    def register(self, peer_name: str, wrapper: Wrapper) -> Wrapper:
        """Record that ``wrapper`` serves ``peer_name``."""
        self._wrappers.setdefault(peer_name, []).append(wrapper)
        return wrapper

    def wrappers_of(self, peer_name: str) -> Tuple[Wrapper, ...]:
        """Every wrapper registered for one peer."""
        return tuple(self._wrappers.get(peer_name, ()))

    def first(self, peer_name: str, service_name: Optional[str] = None) -> Optional[Wrapper]:
        """The first wrapper of ``peer_name`` (optionally filtered by service name)."""
        for wrapper in self._wrappers.get(peer_name, ()):
            if service_name is None or wrapper.service_name == service_name:
                return wrapper
        return None

    def peers(self) -> Tuple[str, ...]:
        """Peer names that have at least one wrapper, sorted."""
        return tuple(sorted(self._wrappers))

    def __iter__(self) -> Iterator[Tuple[str, Wrapper]]:
        for peer_name, wrappers in sorted(self._wrappers.items()):
            for wrapper in wrappers:
                yield peer_name, wrapper

    def __len__(self) -> int:
        return sum(len(wrappers) for wrappers in self._wrappers.values())
