"""A simulated Facebook service and its WebdamLog wrappers.

The real system wraps the Facebook Graph API.  The simulation models the
parts of Facebook the Wepic application touches:

* users and friendship edges,
* groups and group membership (the demo uses the ``SigmodFB`` group),
* photos posted by users or into groups,
* comments and name tags on photos.

Two wrappers expose this data to WebdamLog, exactly as in the paper:

* :class:`FacebookUserWrapper` simulates a peer ``<user>FB`` with relations
  ``friends@<user>FB($userID, $friendName)`` and
  ``pictures@<user>FB($picID, $owner, $URL)``;
* :class:`FacebookGroupWrapper` simulates a peer for a group (``SigmodFB``)
  with relations ``pictures@SigmodFB``, ``comments@SigmodFB`` and
  ``tags@SigmodFB``; pictures inserted into ``pictures@SigmodFB`` by other
  peers are posted to the group.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.errors import WrapperError
from repro.core.facts import Fact
from repro.core.schema import RelationKind, RelationSchema
from repro.wrappers.base import PseudoPeerWrapper


@dataclass(frozen=True)
class FacebookPhoto:
    """A photo stored by the simulated Facebook service."""

    photo_id: int
    owner: str
    name: str
    data: str
    group: Optional[str] = None


@dataclass(frozen=True)
class FacebookComment:
    """A comment on a photo."""

    photo_id: int
    author: str
    text: str


@dataclass(frozen=True)
class FacebookTag:
    """A name tag on a photo."""

    photo_id: int
    tagged_user: str


class FacebookService:
    """In-memory model of the parts of Facebook used by Wepic."""

    def __init__(self):
        self._users: Set[str] = set()
        self._friends: Dict[str, Set[str]] = {}
        self._groups: Dict[str, Set[str]] = {}
        self._photos: Dict[int, FacebookPhoto] = {}
        self._comments: List[FacebookComment] = []
        self._tags: List[FacebookTag] = []
        self._photo_counter = itertools.count(1)

    # -- users and friendships ------------------------------------------- #

    def add_user(self, user: str) -> None:
        """Create a user account (idempotent)."""
        self._users.add(user)
        self._friends.setdefault(user, set())

    def users(self) -> Tuple[str, ...]:
        """Registered users, sorted."""
        return tuple(sorted(self._users))

    def add_friendship(self, user: str, friend: str) -> None:
        """Create a (symmetric) friendship edge; both accounts must exist."""
        for account in (user, friend):
            if account not in self._users:
                raise WrapperError(f"unknown Facebook user {account!r}")
        self._friends[user].add(friend)
        self._friends[friend].add(user)

    def friends_of(self, user: str) -> Tuple[str, ...]:
        """Friends of ``user``, sorted."""
        return tuple(sorted(self._friends.get(user, set())))

    # -- groups ------------------------------------------------------------ #

    def create_group(self, group: str) -> None:
        """Create a group (idempotent)."""
        self._groups.setdefault(group, set())

    def join_group(self, group: str, user: str) -> None:
        """Add ``user`` to ``group`` (both must exist)."""
        if group not in self._groups:
            raise WrapperError(f"unknown Facebook group {group!r}")
        if user not in self._users:
            raise WrapperError(f"unknown Facebook user {user!r}")
        self._groups[group].add(user)

    def group_members(self, group: str) -> Tuple[str, ...]:
        """Members of ``group``, sorted."""
        return tuple(sorted(self._groups.get(group, set())))

    def is_member(self, group: str, user: str) -> bool:
        """``True`` when ``user`` belongs to ``group``."""
        return user in self._groups.get(group, set())

    # -- photos ------------------------------------------------------------ #

    def post_photo(self, owner: str, name: str, data: str,
                   group: Optional[str] = None,
                   photo_id: Optional[int] = None,
                   require_membership: bool = True) -> FacebookPhoto:
        """Post a photo, optionally into a group.

        Posting into a group requires membership unless
        ``require_membership=False`` (the sigmod peer posts on behalf of
        authorised attendees, who are all members in the demo).
        """
        if owner not in self._users:
            raise WrapperError(f"unknown Facebook user {owner!r}")
        if group is not None:
            if group not in self._groups:
                raise WrapperError(f"unknown Facebook group {group!r}")
            if require_membership and not self.is_member(group, owner):
                raise WrapperError(f"{owner!r} is not a member of group {group!r}")
        if photo_id is None:
            photo_id = next(self._photo_counter)
        while photo_id in self._photos:
            photo_id = next(self._photo_counter)
        photo = FacebookPhoto(photo_id=photo_id, owner=owner, name=name, data=data,
                              group=group)
        self._photos[photo_id] = photo
        return photo

    def photos_of(self, owner: str) -> Tuple[FacebookPhoto, ...]:
        """Photos posted by ``owner`` (to their profile or to groups)."""
        return tuple(sorted((p for p in self._photos.values() if p.owner == owner),
                            key=lambda p: p.photo_id))

    def photos_in_group(self, group: str) -> Tuple[FacebookPhoto, ...]:
        """Photos posted into ``group``."""
        return tuple(sorted((p for p in self._photos.values() if p.group == group),
                            key=lambda p: p.photo_id))

    def photo(self, photo_id: int) -> Optional[FacebookPhoto]:
        """Look up a photo by id."""
        return self._photos.get(photo_id)

    def photo_count(self) -> int:
        """Total number of photos stored by the service."""
        return len(self._photos)

    # -- comments and tags -------------------------------------------------- #

    def add_comment(self, photo_id: int, author: str, text: str) -> FacebookComment:
        """Comment on a photo."""
        if photo_id not in self._photos:
            raise WrapperError(f"unknown photo {photo_id!r}")
        comment = FacebookComment(photo_id=photo_id, author=author, text=text)
        self._comments.append(comment)
        return comment

    def add_tag(self, photo_id: int, tagged_user: str) -> FacebookTag:
        """Tag a user on a photo."""
        if photo_id not in self._photos:
            raise WrapperError(f"unknown photo {photo_id!r}")
        tag = FacebookTag(photo_id=photo_id, tagged_user=tagged_user)
        self._tags.append(tag)
        return tag

    def comments_on(self, photo_id: int) -> Tuple[FacebookComment, ...]:
        """Comments on one photo, in insertion order."""
        return tuple(c for c in self._comments if c.photo_id == photo_id)

    def tags_on(self, photo_id: int) -> Tuple[FacebookTag, ...]:
        """Tags on one photo, in insertion order."""
        return tuple(t for t in self._tags if t.photo_id == photo_id)

    def all_comments(self) -> Tuple[FacebookComment, ...]:
        """Every comment stored by the service."""
        return tuple(self._comments)

    def all_tags(self) -> Tuple[FacebookTag, ...]:
        """Every tag stored by the service."""
        return tuple(self._tags)


class FacebookUserWrapper(PseudoPeerWrapper):
    """Expose one Facebook account as a pseudo-peer ``<user>FB``.

    The two exported relations match the paper::

        friends@ÉmilienFB($userID, $friendName)
        pictures@ÉmilienFB($picID, $owner, $URL)
    """

    service_name = "facebook"
    writable_relations = ("pictures",)

    def __init__(self, service: FacebookService, user: str,
                 peer_name: Optional[str] = None):
        super().__init__()
        self.service = service
        self.user = user
        self.peer_name = peer_name or f"{user}FB"
        service.add_user(user)

    def exported_schemas(self) -> Tuple[RelationSchema, ...]:
        return (
            RelationSchema(name="friends", peer=self.peer_name,
                           columns=("userID", "friendName")),
            RelationSchema(name="pictures", peer=self.peer_name,
                           columns=("picID", "owner", "url")),
        )

    def service_facts(self) -> Set[Fact]:
        facts: Set[Fact] = set()
        for friend in self.service.friends_of(self.user):
            facts.add(Fact("friends", self.peer_name, (self.user, friend)))
        for photo in self.service.photos_of(self.user):
            facts.add(Fact("pictures", self.peer_name,
                           (photo.photo_id, photo.owner, photo.name)))
        return facts

    def push_to_service(self, fact: Fact) -> None:
        if fact.relation != "pictures" or len(fact.values) != 3:
            raise WrapperError(f"cannot push fact {fact} to Facebook")
        photo_id, owner, name = fact.values
        self.service.post_photo(owner=str(owner), name=str(name), data="",
                                photo_id=int(photo_id) if photo_id is not None else None,
                                require_membership=False)


class FacebookGroupWrapper(PseudoPeerWrapper):
    """Expose one Facebook group (``SigmodFB`` in the demo) as a pseudo-peer.

    Exported relations::

        pictures@SigmodFB($id, $name, $owner, $data)
        comments@SigmodFB($picID, $author, $text)
        tags@SigmodFB($picID, $attendee)

    Facts inserted into ``pictures@SigmodFB`` by other peers (via the
    auto-publication rule of the sigmod peer) are posted into the group.
    """

    service_name = "facebook"
    writable_relations = ("pictures",)

    def __init__(self, service: FacebookService, group: str,
                 peer_name: Optional[str] = None,
                 require_membership: bool = False):
        super().__init__()
        self.service = service
        self.group = group
        self.peer_name = peer_name or f"{group}FB"
        self.require_membership = require_membership
        service.create_group(group)

    def exported_schemas(self) -> Tuple[RelationSchema, ...]:
        return (
            RelationSchema(name="pictures", peer=self.peer_name,
                           columns=("id", "name", "owner", "data")),
            RelationSchema(name="comments", peer=self.peer_name,
                           columns=("picID", "author", "text")),
            RelationSchema(name="tags", peer=self.peer_name,
                           columns=("picID", "attendee")),
        )

    def service_facts(self) -> Set[Fact]:
        facts: Set[Fact] = set()
        for photo in self.service.photos_in_group(self.group):
            facts.add(Fact("pictures", self.peer_name,
                           (photo.photo_id, photo.name, photo.owner, photo.data)))
            for comment in self.service.comments_on(photo.photo_id):
                facts.add(Fact("comments", self.peer_name,
                               (photo.photo_id, comment.author, comment.text)))
            for tag in self.service.tags_on(photo.photo_id):
                facts.add(Fact("tags", self.peer_name,
                               (photo.photo_id, tag.tagged_user)))
        return facts

    def push_to_service(self, fact: Fact) -> None:
        if fact.relation != "pictures" or len(fact.values) != 4:
            raise WrapperError(f"cannot push fact {fact} to the {self.group} group")
        photo_id, name, owner, data = fact.values
        owner = str(owner)
        if owner not in self.service.users():
            # The demo lets any Wepic user publish via the sigmod peer even
            # without a Facebook account; the service models this by creating
            # a shadow account.
            self.service.add_user(owner)
        self.service.post_photo(
            owner=owner, name=str(name), data=str(data), group=self.group,
            photo_id=int(photo_id) if isinstance(photo_id, int) else None,
            require_membership=self.require_membership,
        )
