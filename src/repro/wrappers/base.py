"""Wrapper base classes.

A wrapper participates in the peer's computation stage through two hooks
called by :class:`~repro.runtime.peer.Peer`:

* ``before_stage(peer)`` — runs before step 1 of the stage; typically pulls
  fresh data from the external service into the peer's relations;
* ``after_stage(peer, stage_result)`` — runs after step 3; typically pushes
  facts that rules or remote peers wrote into designated relations back to
  the external service.

Both hooks are optional; subclasses override what they need.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.engine import StageResult
from repro.core.errors import WrapperError
from repro.core.facts import Fact
from repro.core.schema import RelationSchema


class Wrapper:
    """Base class of all wrappers."""

    #: Human-readable name of the wrapped service (e.g. ``"facebook"``).
    service_name: str = "service"

    def __init__(self):
        self._peer = None

    def attach(self, peer) -> None:
        """Called by :meth:`Peer.attach_wrapper`; declares the exported schemas."""
        self._peer = peer
        for schema in self.exported_schemas():
            peer.declare(schema)

    @property
    def peer(self):
        """The runtime peer the wrapper is attached to (``None`` before attach)."""
        return self._peer

    def exported_schemas(self) -> Tuple[RelationSchema, ...]:
        """The relation schemas this wrapper exports to WebdamLog."""
        return ()

    def before_stage(self, peer) -> None:
        """Hook run before each computation stage of the host peer."""

    def after_stage(self, peer, stage_result: StageResult) -> None:
        """Hook run after each computation stage of the host peer."""


class PseudoPeerWrapper(Wrapper):
    """A wrapper that impersonates an entire peer backed by an external service.

    Subclasses implement :meth:`service_facts` (the current contents of the
    service, rendered as facts of the pseudo-peer's relations) and
    :meth:`push_to_service` (called with facts that appeared in the peer's
    relations but are not yet in the service — e.g. a photo posted by another
    peer).  The default ``before_stage`` performs a bidirectional
    reconciliation between the two.
    """

    #: Relations whose locally-inserted facts are pushed back to the service.
    writable_relations: Tuple[str, ...] = ()

    def service_facts(self) -> Set[Fact]:
        """The current contents of the service as facts of the pseudo-peer."""
        raise NotImplementedError

    def push_to_service(self, fact: Fact) -> None:
        """Write one fact back into the external service."""
        raise NotImplementedError

    def before_stage(self, peer) -> None:
        """Reconcile the service and the pseudo-peer's relations in both directions."""
        service_side = self.service_facts()
        store = peer.engine.state.store
        local_side: Set[Fact] = set()
        relations = {f.relation for f in service_side} | set(self.writable_relations)
        for relation in relations:
            local_side |= set(store.facts(relation, peer.name))
        # Facts present in the service but missing locally: import them.
        for fact in service_side - local_side:
            store.insert(fact)
        # Facts written locally (by rules or remote peers) but missing in the
        # service: export them, restricted to the writable relations.
        for fact in local_side - service_side:
            if fact.relation in self.writable_relations:
                try:
                    self.push_to_service(fact)
                except WrapperError:
                    # The service refused the write (e.g. unauthorised user);
                    # drop the fact so the rejection is observable.
                    store.delete(fact)


class RelationWatchingWrapper(Wrapper):
    """A wrapper that watches one relation of its host peer and reacts to new facts.

    Subclasses implement :meth:`handle_fact`.  Facts are processed exactly
    once (the wrapper remembers what it has already seen); by default the
    processed facts are removed from the relation, treating it as an outbox.
    """

    #: Name of the watched relation (located at the host peer).
    watched_relation: str = "outbox"
    #: Whether processed facts are removed from the relation.
    consume_facts: bool = True

    def __init__(self):
        super().__init__()
        self._processed: Set[Fact] = set()

    def handle_fact(self, peer, fact: Fact) -> None:
        """React to one new fact of the watched relation."""
        raise NotImplementedError

    def after_stage(self, peer, stage_result: StageResult) -> None:
        """Process every new fact of the watched relation."""
        store = peer.engine.state.store
        new_facts = [
            fact for fact in store.facts(self.watched_relation, peer.name)
            if fact not in self._processed
        ]
        for fact in new_facts:
            self.handle_fact(peer, fact)
            self._processed.add(fact)
            if self.consume_facts:
                store.delete(fact)
