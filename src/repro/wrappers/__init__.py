"""Wrappers: bridging WebdamLog peers and (simulated) external Web services.

"A wrapper to some existing system X provides software that exports to
WebdamLog one or more relations corresponding to the data in X, as well as
rules to access/update this data."  (Section 2 of the paper.)

The reproduction cannot talk to the real Facebook or to an SMTP server, so
each wrapper pairs a **simulated service** (an in-memory model of the
external system: :class:`~repro.wrappers.facebook.FacebookService`,
:class:`~repro.wrappers.email.EmailService`,
:class:`~repro.wrappers.dropbox.DropboxService`) with a **wrapper** object
that keeps the service and a peer's relations in sync.  Two wrapper styles
exist, matching the two ways the paper uses them:

* **pseudo-peer wrappers** (e.g. the ``SigmodFB`` group wrapper, the
  ``ÉmilienFB`` user wrapper) expose the service's data as the relations of a
  dedicated peer, so other peers' rules can read and write them
  (``pictures@SigmodFB``);
* **relation-watching wrappers** attach to a user's own peer and act on facts
  inserted into a designated relation (e.g. the email wrapper sends a message
  for every fact appearing in ``email@Jules``).
"""

from repro.wrappers.base import Wrapper, PseudoPeerWrapper, RelationWatchingWrapper
from repro.wrappers.facebook import (
    FacebookService,
    FacebookGroupWrapper,
    FacebookUserWrapper,
)
from repro.wrappers.email import EmailService, EmailWrapper
from repro.wrappers.dropbox import DropboxService, DropboxWrapper
from repro.wrappers.registry import WrapperRegistry

__all__ = [
    "Wrapper",
    "PseudoPeerWrapper",
    "RelationWatchingWrapper",
    "FacebookService",
    "FacebookGroupWrapper",
    "FacebookUserWrapper",
    "EmailService",
    "EmailWrapper",
    "DropboxService",
    "DropboxWrapper",
    "WrapperRegistry",
]
