"""Cost-based rule planning for the WebdamLog engine.

The planner sits between the program and the tuple-at-a-time evaluator:

* :class:`~repro.planner.ordering.BodyPlanner` reorders each rule body by
  estimated cardinality (running relation counts plus per-bound-position
  selectivity estimates from :class:`~repro.planner.stats.StatsProvider`),
  keeping the WebdamLog left-to-right semantics intact — only the maximal
  *local prefix* of a body (literals with a constant relation located at the
  evaluating peer) is permuted, so delegation splits, negation safety and
  variable-location binding are untouched;
* :mod:`repro.planner.magic` applies a magic-set / demand transformation to
  multi-clause live-view programs, so only demand-reachable facts of the
  view's auxiliary relations are derived;
* :class:`~repro.planner.plans.RulePlan` / :class:`StagePlan` record the
  chosen literal order with estimated vs. actual cardinalities, surfaced on
  :attr:`repro.core.engine.StageResult.plan`.

The ``REPRO_PLANNER`` environment variable (``off`` / ``order`` / ``magic``)
and :meth:`repro.api.SystemBuilder.planner` select the mode; ``off`` keeps
the seed's written-order behaviour reachable for differential testing.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable selecting the planner mode when the builder does not.
PLANNER_ENV = "REPRO_PLANNER"

#: Accepted planner modes: ``off`` evaluates bodies in written order,
#: ``order`` adds cost-based join ordering, ``magic`` additionally applies
#: the magic-set demand transformation to compiled live-view programs.
PLANNER_MODES = ("off", "order", "magic")

#: Mode used when neither the builder nor the environment chose one.
DEFAULT_PLANNER_MODE = "magic"


def resolve_planner_mode(mode: Optional[str] = None) -> str:
    """Resolve the effective planner mode.

    Explicit ``mode`` wins, then the ``REPRO_PLANNER`` environment variable,
    then :data:`DEFAULT_PLANNER_MODE`.  Unknown names raise ``ValueError``.
    """
    chosen = mode or os.environ.get(PLANNER_ENV) or DEFAULT_PLANNER_MODE
    chosen = chosen.strip().lower()
    if chosen not in PLANNER_MODES:
        raise ValueError(
            f"unknown planner mode {chosen!r}; expected one of "
            f"{', '.join(PLANNER_MODES)}"
        )
    return chosen


from repro.planner.plans import LiteralStep, RulePlan, StagePlan  # noqa: E402
from repro.planner.stats import StatsProvider  # noqa: E402
from repro.planner.ordering import BodyPlanner  # noqa: E402
from repro.planner.magic import MagicRewrite, apply_magic  # noqa: E402

__all__ = [
    "PLANNER_ENV",
    "PLANNER_MODES",
    "DEFAULT_PLANNER_MODE",
    "resolve_planner_mode",
    "LiteralStep",
    "RulePlan",
    "StagePlan",
    "StatsProvider",
    "BodyPlanner",
    "MagicRewrite",
    "apply_magic",
]
