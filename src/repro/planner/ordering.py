"""Cost-based join ordering of WebdamLog rule bodies.

WebdamLog bodies are evaluated left to right and the order is *semantically
loaded*: the first remote literal splits the rule into a delegation, and a
variable used as a relation/peer name or inside a negated literal must be
bound before the literal is reached.  The planner therefore permutes only
the **maximal local prefix** — the leading run of literals whose relation is
a constant and whose peer is (syntactically) the evaluating peer:

* no delegation can originate inside the prefix, so by the time evaluation
  reaches the written suffix every prefix literal is consumed and the
  remainder ``rule.body[index:]`` handed to a delegation is exactly what
  written-order evaluation would have produced;
* positive prefix literals are pure joins and commute freely;
* a negated prefix literal is placed as soon as every non-anonymous argument
  variable is bound by an already-placed positive literal — it then filters
  exactly the substitutions written order would have filtered.

Within the prefix the order is chosen greedily: at each step the cheapest
remaining positive literal is picked, where the cost of a literal is its
relation count divided by the distinct-value counts of its bound argument
positions (constants, or variables bound by already-placed literals).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.rules import Atom, Rule
from repro.core.terms import Constant, Variable
from repro.planner.plans import LiteralStep, RulePlan
from repro.planner.stats import StatsProvider, drifted


class BodyPlanner:
    """Plans rule-body evaluation order for one peer.

    Plans are cached per ``(rule_id, delta_index)``; the cache is cleared on
    program-version bumps (rule/delegation changes, see
    :attr:`repro.core.engine.WebdamLogEngine.program_version`) and a cached
    plan is replanned when the count of any relation it reads has drifted by
    more than the stats drift factor (insert/retract churn changes the
    cheapest order).
    """

    def __init__(self, peer: str, stats: StatsProvider, mode: str = "order"):
        self.peer = peer
        self.stats = stats
        self.mode = mode
        self._version = -1
        # {(rule_id, delta_index): (plan, {(relation, peer): count at planning})}
        self._cache: Dict[Tuple[str, Optional[int]],
                          Optional[Tuple[RulePlan, Dict[Tuple[str, str], int]]]] = {}
        self.counters: Dict[str, int] = {
            "plans_computed": 0,
            "plans_cached": 0,
            "plans_reordered": 0,
        }

    # ------------------------------------------------------------------ #
    # cache management
    # ------------------------------------------------------------------ #

    def sync(self, program_version: int) -> None:
        """Drop every cached plan when the program version moved."""
        if program_version != self._version:
            self._version = program_version
            self._cache.clear()

    def invalidate(self) -> None:
        """Drop every cached plan unconditionally."""
        self._cache.clear()

    # ------------------------------------------------------------------ #
    # planning entry points
    # ------------------------------------------------------------------ #

    def plan_rule(self, rule: Rule) -> Optional[RulePlan]:
        """Plan a full evaluation of ``rule``; ``None`` when there is nothing
        to order (local prefix shorter than two literals)."""
        return self._cached_plan(rule, None)

    def plan_rule_delta(self, rule: Rule, delta_index: int) -> Optional[RulePlan]:
        """Plan a seminaive evaluation with body position ``delta_index``
        restricted to the delta.  The delta literal always comes first; the
        rest of the local prefix is ordered by cost with the delta literal's
        variables treated as bound.  ``None`` when the delta position lies
        outside the local prefix (written order applies)."""
        return self._cached_plan(rule, delta_index)

    def _cached_plan(self, rule: Rule, delta_index: Optional[int]
                     ) -> Optional[RulePlan]:
        key = (rule.rule_id, delta_index)
        if key in self._cache:
            entry = self._cache[key]
            if entry is None:
                return None
            plan, snapshot = entry
            if not any(drifted(baseline, self.stats.count(relation, peer))
                       for (relation, peer), baseline in snapshot.items()):
                self.counters["plans_cached"] += 1
                plan.cached = True
                return plan
        plan, snapshot = self._compute(rule, delta_index)
        self._cache[key] = None if plan is None else (plan, snapshot)
        if plan is not None:
            self.counters["plans_computed"] += 1
            if plan.reordered:
                self.counters["plans_reordered"] += 1
        return plan

    # ------------------------------------------------------------------ #
    # plan construction
    # ------------------------------------------------------------------ #

    def _local_prefix(self, rule: Rule) -> int:
        """Length of the maximal reorderable prefix of the body."""
        length = 0
        for atom in rule.body:
            if (atom.relation_constant() is None
                    or atom.peer_constant() != self.peer):
                break
            length += 1
        return length

    def _compute(self, rule: Rule, delta_index: Optional[int]
                 ) -> Tuple[Optional[RulePlan], Dict[Tuple[str, str], int]]:
        prefix = self._local_prefix(rule)
        if prefix < 2 or (delta_index is not None and delta_index >= prefix):
            return None, {}

        bound: Set[Variable] = set()
        order: List[int] = []
        estimates: Dict[int, Optional[float]] = {}
        remaining = set(range(prefix))

        def place(index: int, estimate: Optional[float]) -> None:
            order.append(index)
            remaining.discard(index)
            estimates[index] = estimate
            atom = rule.body[index]
            if not atom.negated:
                bound.update(atom.argument_variables())

        if delta_index is not None:
            place(delta_index, None)

        while remaining:
            placeable_negations = [
                index for index in sorted(remaining)
                if rule.body[index].negated and all(
                    variable in bound or variable.is_anonymous()
                    for variable in rule.body[index].argument_variables())
            ]
            if placeable_negations:
                # A bound negation is a pure filter: apply it as early as
                # possible so it prunes before the next join fans out.
                place(placeable_negations[0], None)
                continue
            positives = [index for index in sorted(remaining)
                         if not rule.body[index].negated]
            if not positives:
                # Only negations whose variables are not yet bound remain.
                # Written-order safety guarantees this cannot happen once
                # every prefix positive is placed; bail out defensively.
                return None, {}
            best_index, best_cost = positives[0], None
            for index in positives:
                cost = self._estimate(rule.body[index], bound)
                if best_cost is None or cost < best_cost:
                    best_index, best_cost = index, cost
            place(best_index, best_cost)

        order.extend(range(prefix, len(rule.body)))
        order_tuple = tuple(order)
        reordered = order_tuple != tuple(range(len(rule.body)))
        steps = tuple(
            LiteralStep(index=index, literal=str(rule.body[index]),
                        estimate=estimates.get(index))
            for index in order_tuple
        )
        snapshot: Dict[Tuple[str, str], int] = {}
        for index in range(prefix):
            atom = rule.body[index]
            relation, peer = atom.relation_constant(), atom.peer_constant()
            snapshot[(relation, peer)] = self.stats.count(relation, peer)
        plan = RulePlan(rule_id=rule.rule_id, order=order_tuple, steps=steps,
                        reordered=reordered, delta_index=delta_index)
        return plan, snapshot

    def _estimate(self, atom: Atom, bound: Set[Variable]) -> float:
        """Estimated number of candidate facts for ``atom`` given ``bound``.

        Relation count divided by the distinct-value count of every argument
        position that will be bound when the literal is reached (a constant,
        or a variable bound by an already-placed literal).
        """
        relation = atom.relation_constant()
        peer = atom.peer_constant()
        cost = float(self.stats.count(relation, peer))
        if cost == 0.0:
            return 0.0
        seen_here: Set[Variable] = set()
        for position, term in enumerate(atom.args):
            selective = isinstance(term, Constant) or (
                isinstance(term, Variable)
                and (term in bound or term in seen_here))
            if selective:
                cost /= max(1, self.stats.distinct(relation, peer, position))
            if isinstance(term, Variable):
                seen_here.add(term)
        return cost
