"""Cardinality statistics over a peer's state.

The planner's cost model needs two numbers per relation: the current fact
count (cheap — the stores maintain running counts) and, per argument
position, an estimate of the number of distinct values (used as the
selectivity of binding that position).  Distinct counts are computed lazily
by one relation scan and cached; a cached entry is recomputed when the
relation's count has drifted by more than :data:`DRIFT_FACTOR` since it was
taken, so estimates track insert/retract churn without rescanning on every
plan.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, Tuple

#: A cached distinct-count (and a cached plan, see
#: :class:`~repro.planner.ordering.BodyPlanner`) is considered stale when the
#: relation count grew or shrank by more than this factor since it was taken.
DRIFT_FACTOR = 4


def drifted(baseline: int, current: int) -> bool:
    """``True`` when ``current`` is more than :data:`DRIFT_FACTOR` away from
    ``baseline`` (in either direction, with 0 treated as 1)."""
    low = max(1, baseline)
    high = max(1, current)
    return high > low * DRIFT_FACTOR or low > high * DRIFT_FACTOR


class StatsProvider:
    """Relation counts and per-position distinct-value estimates.

    Reads through a :class:`~repro.core.state.PeerState`: the visible
    cardinality of ``relation@peer`` is the union of the extensional store,
    the derived store and the provided facts (matching what the evaluator's
    fact view iterates).
    """

    def __init__(self, state):
        self.state = state
        # {(relation, peer, position): (count when computed, distinct values)}
        self._distinct: Dict[Tuple[str, str, int], Tuple[int, int]] = {}

    def count(self, relation: str, peer: str) -> int:
        """Current number of facts visible for ``relation@peer``."""
        state = self.state
        return (state.store.count(relation, peer)
                + state.derived.count(relation, peer)
                + state.provided_count(relation, peer))

    def distinct(self, relation: str, peer: str, position: int) -> int:
        """Estimated distinct values at ``position`` of ``relation@peer``.

        Computed by one scan (stored + derived facts; the usually-small
        provided set is ignored) and cached until the relation count drifts.
        Always at least 1 so it can be used as a divisor.
        """
        count = self.count(relation, peer)
        key = (relation, peer, position)
        cached = self._distinct.get(key)
        if cached is not None and not drifted(cached[0], count):
            return cached[1]
        values = set()
        state = self.state
        for fact in chain(state.store.facts(relation, peer),
                          state.derived.facts(relation, peer)):
            if position < len(fact.values):
                value = fact.values[position]
                values.add((type(value).__name__, value))
        distinct = max(1, len(values))
        self._distinct[key] = (count, distinct)
        return distinct
