"""Plan objects recorded for observability.

A :class:`RulePlan` describes how one rule body is walked: the literal order
(original body positions), the estimated candidate cardinality of each step
at planning time, and the actual number of matches observed while the plan
was executed.  A :class:`StagePlan` collects the plans a fixpoint stage used
together with the magic predicates active in the program, and is surfaced on
:attr:`repro.core.engine.StageResult.plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class LiteralStep:
    """One step of a rule plan: the literal at original body ``index``.

    ``estimate`` is the planner's candidate-cardinality estimate at planning
    time (``None`` for steps whose input is a delta restriction or a negated
    filter); ``actual`` counts the facts that matched at this step while the
    plan was executed, cumulatively across uses of the (cached) plan.
    """

    index: int
    literal: str
    estimate: Optional[float] = None
    actual: int = 0

    def as_dict(self) -> Dict:
        """Plain-data form (used by benchmarks and debugging dumps)."""
        return {
            "index": self.index,
            "literal": self.literal,
            "estimate": self.estimate,
            "actual": self.actual,
        }


@dataclass
class RulePlan:
    """The chosen evaluation order for one rule body.

    ``order`` holds original body positions; positions outside the local
    prefix keep their written order at the tail, so delegation remainders
    (``rule.body[index:]``) stay exactly the written suffix.  ``delta_index``
    is the body position restricted to the delta during seminaive evaluation
    (always first in ``order``), ``None`` for full evaluations.
    """

    rule_id: str
    order: Tuple[int, ...]
    steps: Tuple[LiteralStep, ...]
    reordered: bool
    delta_index: Optional[int] = None
    cached: bool = False

    def key(self) -> Tuple[str, Optional[int]]:
        """Identity of the plan within a stage."""
        return (self.rule_id, self.delta_index)

    def as_dict(self) -> Dict:
        """Plain-data form (used by benchmarks and debugging dumps)."""
        return {
            "rule_id": self.rule_id,
            "order": list(self.order),
            "reordered": self.reordered,
            "delta_index": self.delta_index,
            "cached": self.cached,
            "steps": [step.as_dict() for step in self.steps],
        }


@dataclass
class StagePlan:
    """Every plan one fixpoint stage executed, plus the active magic predicates."""

    rule_plans: Tuple[RulePlan, ...] = ()
    magic_relations: Tuple[str, ...] = field(default_factory=tuple)

    def reordered_count(self) -> int:
        """Number of executed plans that deviate from written order."""
        return sum(1 for plan in self.rule_plans if plan.reordered)

    def as_dict(self) -> Dict:
        """Plain-data form (used by benchmarks and debugging dumps)."""
        return {
            "rule_plans": [plan.as_dict() for plan in self.rule_plans],
            "magic_relations": list(self.magic_relations),
        }
