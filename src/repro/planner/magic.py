"""Magic-set / demand transformation for compiled live-view programs.

A multi-clause view program (see :func:`repro.core.parser.parse_query_program`)
defines **view-scoped auxiliary relations**: intermediate intensional
relations that exist only while the view is open and that nothing outside the
view reads.  That scoping is what makes the classic magic-set rewrite both
*sound* and *work-saving* here — the auxiliary relation can be restricted to
demand-reachable facts in place (no adorned copy is needed, because the view
owns every rule that derives into it and every literal that reads from it).

Given an answer rule whose body uses one auxiliary relation ``R`` with at
least one constant argument (the *bound* positions β), the rewrite installs:

* an intensional **magic relation** ``_magic_<R>`` of arity ``|β|`` holding
  the demanded bindings;
* a persistent extensional **demand anchor** relation with a single anchor
  fact, inserted when the view is installed and deleted on ``view.close()``
  — retracting the anchor (or uninstalling the rules) erases every magic and
  auxiliary fact at the next fixpoint, so a closed view leaves no residue;
* a **seed rule** ``_magic_R(c_β) :- anchor(...)`` for the answer's constants;
* a **guard** on every defining rule of ``R``:
  ``R(t) :- _magic_R(t_β), body``;
* a **propagation rule** per recursive occurrence ``R(s)`` at body position
  ``j``: ``_magic_R(s_β) :- _magic_R(t_β), body[0:j]``.

The rewrite bails out (returning ``None``, leaving the program untouched)
whenever a precondition fails: no constants in the occurrence, several
auxiliary relations entangled, negated or remote literals among the defining
rules, or an unsafe propagation rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import SafetyError
from repro.core.facts import Fact
from repro.core.rules import Atom, Rule, fresh_rule_id
from repro.core.schema import RelationKind, RelationSchema
from repro.core.terms import Constant

#: Name prefix of generated magic relations (plan observability keys on it).
MAGIC_PREFIX = "_magic_"

#: Name prefix of generated demand-anchor relations.
DEMAND_PREFIX = "_demand_"

#: The single value stored in a demand anchor relation.
ANCHOR_TOKEN = "on"


@dataclass(frozen=True)
class MagicRewrite:
    """The output of a successful magic-set rewrite."""

    rules: Tuple[Rule, ...]
    extra_schemas: Tuple[RelationSchema, ...]
    anchor_facts: Tuple[Fact, ...]
    magic_relations: Tuple[str, ...]


def apply_magic(view_name: str, owner: str, answer_rule: Rule,
                aux_rules: Sequence[Rule],
                aux_relations: Set[str]) -> Optional[MagicRewrite]:
    """Rewrite a view program for demand-driven evaluation.

    ``aux_rules`` are the view-scoped rules deriving the auxiliary relations
    (already renamed to their scoped names, all in ``aux_relations``);
    ``answer_rule`` derives the view relation itself.  Returns ``None`` when
    the program does not fit the supported shape — the caller installs the
    untransformed program in that case.
    """
    target = _bound_occurrence(answer_rule, aux_relations, owner)
    if target is None:
        return None
    occurrence, bound_positions = target
    relation = occurrence.relation_constant()

    defining = [rule for rule in aux_rules
                if rule.head.relation_constant() == relation]
    others = [rule for rule in aux_rules
              if rule.head.relation_constant() != relation]
    if not defining or others:
        # Entangled auxiliary relations (R defined in terms of S) would need
        # adornment propagation through S as well; keep the rewrite simple.
        return None
    for rule in defining:
        if not _local_positive_program(rule, relation, aux_relations, owner):
            return None

    magic_name = f"{MAGIC_PREFIX}{relation}"
    anchor_name = f"{DEMAND_PREFIX}{view_name}"
    magic_schema = RelationSchema(
        name=magic_name, peer=owner,
        columns=tuple(f"b{i}" for i in range(len(bound_positions))),
        kind=RelationKind.INTENSIONAL, persistent=True,
    )
    anchor_schema = RelationSchema(
        name=anchor_name, peer=owner, columns=("token",),
        kind=RelationKind.EXTENSIONAL, persistent=True,
    )
    anchor_fact = Fact(anchor_name, owner, (ANCHOR_TOKEN,))
    anchor_atom = Atom(relation=anchor_name, peer=owner,
                       args=(Constant(ANCHOR_TOKEN),))

    def magic_atom(source: Atom) -> Atom:
        return Atom(relation=magic_name, peer=owner,
                    args=tuple(source.args[p] for p in bound_positions))

    rewritten: List[Rule] = []
    # Seed: the answer's constants are demanded while the anchor fact exists.
    seed = Rule(head=magic_atom(occurrence), body=(anchor_atom,),
                author=owner, rule_id=fresh_rule_id(f"{view_name}-magic-seed"))
    try:
        seed.check_safety()
    except SafetyError:
        return None
    rewritten.append(seed)

    for rule in defining:
        guarded = Rule(
            head=rule.head,
            body=(magic_atom(rule.head),) + tuple(rule.body),
            author=rule.author or owner,
            rule_id=rule.rule_id,
        )
        try:
            guarded.check_safety()
        except SafetyError:
            return None
        rewritten.append(guarded)
        for position, atom in enumerate(rule.body):
            if atom.relation_constant() != relation:
                continue
            propagation = Rule(
                head=magic_atom(atom),
                body=(magic_atom(rule.head),) + tuple(rule.body[:position]),
                author=rule.author or owner,
                rule_id=fresh_rule_id(f"{view_name}-magic"),
            )
            try:
                propagation.check_safety()
            except SafetyError:
                return None
            rewritten.append(propagation)

    rewritten.append(answer_rule)
    return MagicRewrite(
        rules=tuple(rewritten),
        extra_schemas=(magic_schema, anchor_schema),
        anchor_facts=(anchor_fact,),
        magic_relations=(magic_name,),
    )


def _bound_occurrence(answer_rule: Rule, aux_relations: Set[str],
                      owner: str) -> Optional[Tuple[Atom, Tuple[int, ...]]]:
    """The single positive auxiliary occurrence with constant arguments.

    Requires exactly one body occurrence of exactly one auxiliary relation,
    positive, located at the owner, with at least one constant argument —
    the shape whose demand is a single binding pattern.
    """
    occurrences = [atom for atom in answer_rule.body
                   if atom.relation_constant() in aux_relations]
    if len(occurrences) != 1:
        return None
    occurrence = occurrences[0]
    if occurrence.negated or occurrence.peer_constant() != owner:
        return None
    bound = tuple(position for position, term in enumerate(occurrence.args)
                  if isinstance(term, Constant))
    if not bound:
        return None
    return occurrence, bound


def _local_positive_program(rule: Rule, relation: str,
                            aux_relations: Set[str], owner: str) -> bool:
    """``True`` when a defining rule fits the rewrite: every literal local at
    the owner with a constant relation, recursive occurrences positive, and
    no other auxiliary relation referenced."""
    for atom in rule.body:
        name = atom.relation_constant()
        if name is None or atom.peer_constant() != owner:
            return False
        if name == relation:
            if atom.negated:
                return False
        elif name in aux_relations:
            return False
    return True
