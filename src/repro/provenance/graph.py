"""Incrementally maintained provenance graphs for derived facts.

Each time the engine's fixpoint derives a fact, the :class:`ProvenanceTracker`
records a :class:`Derivation`: the rule that fired and the facts that matched
its body.  The accumulated derivations form a bipartite graph (facts and
derivations) from which why-provenance and lineage queries are answered:

* :meth:`ProvenanceGraph.why` — the alternative sets of immediate supporting
  facts of a derived fact;
* :meth:`ProvenanceGraph.lineage` — the transitive closure down to base facts;
* :meth:`ProvenanceGraph.base_relations` — which relations the lineage of a
  fact draws from (the input of the access-control view policy);
* :meth:`ProvenanceGraph.depends_on_peer` — whether any supporting fact came
  from a given peer's relations.

Unlike the original passive recorder, the graph is **maintained**: it is a
support-counted structure that the engine's incremental evaluation paths keep
in sync with the current derivability state.

* a derivation dies when any of its supporting facts dies
  (:meth:`ProvenanceGraph.remove_support`);
* a fact dies when its last derivation dies (the removal cascades);
* :meth:`ProvenanceGraph.base_relations` and
  :meth:`ProvenanceGraph.depends_on_peer` are answered from a per-fact
  lineage index (frozen set of base relations / peers), built on demand and
  invalidated precisely — only the entries of facts whose lineage a mutation
  can reach — so repeated access-control probes are O(1) per fact instead of
  a transitive walk.

Retracted or overwritten facts therefore drop out of the graph instead of
accumulating for the lifetime of the run.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.facts import Fact
from repro.core.rules import Rule


@dataclass(frozen=True)
class Derivation:
    """One application of a rule: the derived fact and its immediate support."""

    fact: Fact
    rule_id: str
    support: Tuple[Fact, ...]
    author: Optional[str] = None

    def key(self) -> Tuple[Fact, str, Tuple[Fact, ...]]:
        """Dedup identity shared by the graph, the shipped-derivation memory
        and the per-target shipping memos: ``author`` is provenance metadata,
        not identity."""
        return (self.fact, self.rule_id, self.support)

    def __str__(self) -> str:
        supports = ", ".join(str(f) for f in self.support)
        return f"{self.fact} <= [{self.rule_id}] {supports}"


@dataclass(frozen=True)
class Explanation:
    """The full provenance story of one fact (what ``explain`` returns).

    ``why`` is the why-provenance (alternative sets of immediate supporting
    facts), ``lineage`` the transitive support down to base facts,
    ``base_relations`` the qualified names of the base relations the lineage
    draws from, and ``peers`` every peer whose facts contributed (including
    the fact's own hosting peer).
    """

    fact: Fact
    derived: bool
    why: Tuple[FrozenSet[Fact], ...]
    lineage: FrozenSet[Fact]
    base_relations: FrozenSet[str]
    peers: FrozenSet[str]

    def __str__(self) -> str:
        if not self.derived:
            return f"{self.fact}: base fact of {self.fact.qualified_relation}"
        alternatives = " | ".join(
            "{" + ", ".join(sorted(str(f) for f in alt)) + "}" for alt in self.why
        )
        return (f"{self.fact} <= {alternatives} "
                f"(bases: {', '.join(sorted(self.base_relations))})")


class ProvenanceGraph:
    """Support-counted derivations, indexed by derived and supporting fact.

    Every mutation bumps :attr:`version` (consumers such as the ACL layer's
    :class:`~repro.acl.policies.PolicyEngine` use it to invalidate their own
    caches on deltas only).
    """

    def __init__(self):
        # Derived fact -> its alternative derivations (the support count of a
        # fact is the length of this list; the fact dies when it reaches 0).
        self._derivations: Dict[Fact, List[Derivation]] = {}
        # Supporting fact -> the derivations it participates in (reverse
        # edges; drives remove_support cascades and index invalidation).
        self._supported: Dict[Fact, List[Derivation]] = {}
        # Qualified relation -> its derived facts, so the scoped rederive
        # clear is proportional to the cleared predicates, not the graph.
        self._by_relation: Dict[str, Set[Fact]] = {}
        self._count = 0
        #: Bumped on every mutation; external caches key off it.
        self.version = 0
        # The incremental lineage index: per-fact frozen sets, built on first
        # probe and invalidated for exactly the facts a mutation can reach.
        self._bases_index: Dict[Fact, FrozenSet[str]] = {}
        self._peers_index: Dict[Fact, FrozenSet[str]] = {}

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add(self, derivation: Derivation) -> bool:
        """Record one derivation; returns ``False`` for a known duplicate."""
        existing = self._derivations.setdefault(derivation.fact, [])
        key = derivation.key()
        for known in existing:
            if known.key() == key:
                return False
        self._invalidate([derivation.fact])
        existing.append(derivation)
        self._by_relation.setdefault(
            derivation.fact.qualified_relation, set()).add(derivation.fact)
        for supporting in set(derivation.support):
            self._supported.setdefault(supporting, []).append(derivation)
        self._count += 1
        self.version += 1
        return True

    def remove_support(self, fact: Fact) -> int:
        """``fact`` no longer holds: kill every derivation it supports.

        A derivation dies when any of its supporting facts dies; a derived
        fact dies when its last derivation dies, which cascades into the
        derivations *it* supported.  Returns how many derivations died.
        """
        self._invalidate([fact])
        removed = 0
        frontier: List[Fact] = [fact]
        while frontier:
            dead = frontier.pop()
            for derivation in self._supported.pop(dead, ()):  # type: ignore[arg-type]
                if self._discard(derivation, skip_support=dead):
                    removed += 1
                    head = derivation.fact
                    if head not in self._derivations:
                        frontier.append(head)
        return removed

    def retract_fact(self, fact: Fact) -> int:
        """``fact`` was deleted: drop its derivations and cascade its support.

        Used for retracted base facts, overwritten (primary-key displaced)
        facts and provided facts the sender withdrew.  Returns how many
        derivations died.
        """
        self._invalidate([fact])
        removed = 0
        for derivation in list(self._derivations.get(fact, ())):
            if self._discard(derivation):
                removed += 1
        return removed + self.remove_support(fact)

    def remove_derivation(self, derivation: Derivation) -> bool:
        """Remove one specific derivation; cascade if its fact thereby dies.

        Returns ``False`` when the derivation was not (or no longer) in the
        graph.
        """
        self._invalidate([derivation.fact])
        if not self._discard(derivation):
            return False
        if derivation.fact not in self._derivations:
            self.remove_support(derivation.fact)
        return True

    def retract_predicates(self, predicates: Iterable[str]) -> int:
        """Drop every derivation whose derived fact is in ``predicates``.

        Mirror of the engine's scoped delete-and-rederive: the affected
        predicate closure is cleared here exactly as the derived store is,
        and re-evaluation re-records what is still derivable.  No cascade is
        performed — every fact a dead support can reach is, by construction
        of the closure, itself in ``predicates``.
        """
        doomed = [fact for predicate in set(predicates)
                  for fact in self._by_relation.get(predicate, ())]
        if not doomed:
            return 0
        self._invalidate(doomed)
        removed = 0
        for fact in doomed:
            for derivation in list(self._derivations.get(fact, ())):
                if self._discard(derivation):
                    removed += 1
        return removed

    def clear(self) -> None:
        """Forget every derivation."""
        self._derivations.clear()
        self._supported.clear()
        self._by_relation.clear()
        self._bases_index.clear()
        self._peers_index.clear()
        self._count = 0
        self.version += 1

    def _discard(self, derivation: Derivation,
                 skip_support: Optional[Fact] = None) -> bool:
        """Remove one derivation from both indexes (``False`` if already gone)."""
        bucket = self._derivations.get(derivation.fact)
        if bucket is None or derivation not in bucket:
            return False
        bucket.remove(derivation)
        if not bucket:
            del self._derivations[derivation.fact]
            relation = derivation.fact.qualified_relation
            siblings = self._by_relation.get(relation)
            if siblings is not None:
                siblings.discard(derivation.fact)
                if not siblings:
                    del self._by_relation[relation]
        for supporting in set(derivation.support):
            if supporting == skip_support:
                continue  # its reverse bucket is being drained by the caller
            reverse = self._supported.get(supporting)
            if reverse is not None:
                try:
                    reverse.remove(derivation)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not reverse:
                    del self._supported[supporting]
        self._count -= 1
        self.version += 1
        return True

    def _invalidate(self, roots: Iterable[Fact]) -> None:
        """Drop the lineage-index entries of ``roots`` and every dependent.

        Walks the reverse (supported-by) edges transitively *before* the
        mutation happens, so every fact whose lineage could include a root is
        reached while the edges still exist.
        """
        if not self._bases_index and not self._peers_index:
            return
        stack = list(roots)
        seen: Set[Fact] = set()
        while stack:
            fact = stack.pop()
            if fact in seen:
                continue
            seen.add(fact)
            self._bases_index.pop(fact, None)
            self._peers_index.pop(fact, None)
            for derivation in self._supported.get(fact, ()):
                stack.append(derivation.fact)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def derivations_of(self, fact: Fact) -> Tuple[Derivation, ...]:
        """Every recorded derivation of ``fact``."""
        return tuple(self._derivations.get(fact, ()))

    def derivation_count(self, fact: Fact) -> int:
        """How many alternative derivations currently support ``fact``."""
        return len(self._derivations.get(fact, ()))

    def is_derived(self, fact: Fact) -> bool:
        """``True`` when at least one live derivation of ``fact`` is recorded."""
        return fact in self._derivations

    def why(self, fact: Fact) -> Tuple[FrozenSet[Fact], ...]:
        """Why-provenance: the alternative sets of immediate supporting facts."""
        return tuple(frozenset(d.support) for d in self._derivations.get(fact, ()))

    def lineage(self, fact: Fact) -> FrozenSet[Fact]:
        """Transitive support of ``fact`` down to base facts (excludes ``fact`` itself)."""
        seen: Set[Fact] = set()
        frontier: List[Fact] = [fact]
        while frontier:
            current = frontier.pop()
            for derivation in self._derivations.get(current, ()):
                for supporting in derivation.support:
                    if supporting not in seen and supporting != fact:
                        seen.add(supporting)
                        frontier.append(supporting)
        return frozenset(seen)

    def base_facts(self, fact: Fact) -> FrozenSet[Fact]:
        """The subset of :meth:`lineage` that has no recorded derivation (base facts)."""
        if not self.is_derived(fact):
            return frozenset({fact})
        return frozenset(f for f in self.lineage(fact) if not self.is_derived(f))

    def base_relations(self, fact: Fact) -> FrozenSet[str]:
        """Qualified names of the base relations the lineage of ``fact`` draws from.

        Answered from the maintained lineage index: O(1) once built, rebuilt
        only after a mutation that can reach ``fact``'s lineage.
        """
        cached = self._bases_index.get(fact)
        if cached is None:
            cached = frozenset(f.qualified_relation for f in self.base_facts(fact))
            self._bases_index[fact] = cached
        return cached

    def lineage_peers(self, fact: Fact) -> FrozenSet[str]:
        """Peers owning some fact in the lineage of ``fact`` (indexed, O(1))."""
        cached = self._peers_index.get(fact)
        if cached is None:
            cached = frozenset(f.peer for f in self.lineage(fact))
            self._peers_index[fact] = cached
        return cached

    def depends_on_peer(self, fact: Fact, peer: str) -> bool:
        """``True`` when some fact in the lineage belongs to a relation of ``peer``."""
        if fact.peer == peer and not self.is_derived(fact):
            return True
        return peer in self.lineage_peers(fact)

    def facts(self) -> Tuple[Fact, ...]:
        """Every derived fact with at least one live derivation."""
        return tuple(self._derivations)

    def facts_of(self, relation: str) -> Tuple[Fact, ...]:
        """The derived facts of one qualified relation (indexed lookup)."""
        return tuple(self._by_relation.get(relation, ()))

    def explain(self, fact: Fact) -> Explanation:
        """The full provenance story of ``fact``."""
        lineage = self.lineage(fact)
        return Explanation(
            fact=fact,
            derived=self.is_derived(fact),
            why=self.why(fact),
            lineage=lineage,
            base_relations=self.base_relations(fact),
            peers=frozenset({fact.peer}) | self.lineage_peers(fact),
        )


class ProvenanceTracker:
    """Adapter between the engine's derivation hooks and a :class:`ProvenanceGraph`.

    Attach it to an engine with::

        engine.provenance = ProvenanceTracker()

    (or build the whole deployment with ``system().provenance()``).  The
    engine records every derivation through :meth:`record` and keeps the
    graph consistent along its incremental evaluation paths through the
    maintenance hooks :meth:`on_base_deleted`, :meth:`on_rederive` and
    :meth:`on_full_recompute` — the graph always reflects the *current*
    derivability state, so why/lineage answers match what a full recompute
    would record, at delta cost.

    Derivations received from remote peers (shipped with fact updates over
    the wire) are remembered separately via :meth:`record_remote`: local
    re-evaluation cannot re-derive them, so they survive full recomputes and
    are dropped only when the shipped fact itself is retracted.

    The historical ``per_stage`` mode (clear the graph at every stage) is
    deprecated: it relied on every stage re-recording all derivations, which
    pins the engine to full recomputes.  A tracker in per-stage mode still
    behaves exactly as before — the engine detects it and falls back to full
    evaluation.
    """

    def __init__(self, per_stage: bool = False):
        self.graph = ProvenanceGraph()
        if per_stage:
            warnings.warn(
                "ProvenanceTracker(per_stage=True) is deprecated; the graph "
                "is now incrementally maintained, so the cumulative default "
                "already reflects the current derivability state",
                DeprecationWarning, stacklevel=2,
            )
        self.per_stage = per_stage
        self._last_stage_seen: Optional[int] = None
        # Derivations shipped by remote peers, keyed for idempotent re-adds.
        self._remote: Dict[Tuple[Fact, str, Tuple[Fact, ...]], Derivation] = {}
        # The shipped facts themselves (message-inserted heads).  Lineage
        # intermediates shipped alongside are retained only while reachable
        # from a live anchor — see :meth:`_sync_remote`.
        self._remote_anchors: Set[Fact] = set()
        # Every fact appearing in the shipped memory (heads and supports);
        # deletions disjoint from it skip the reconciliation pass entirely.
        self._remote_facts: Set[Fact] = set()
        # Locally recorded derivations that are new since the last drain —
        # the runtime peer uses this to ship *alternative* derivations of
        # facts it already sent (the fact itself produces no update, so no
        # message would otherwise carry them).  Logging starts at the first
        # drain, so trackers on engines nobody drains accumulate nothing.
        self._fresh: List[Derivation] = []
        self._log_fresh = False

    def record(self, fact: Fact, rule: Rule, support: Tuple[Fact, ...]) -> None:
        """Engine hook: record one derivation."""
        derivation = Derivation(fact=fact, rule_id=rule.rule_id,
                                support=tuple(support), author=rule.author)
        if self.graph.add(derivation) and self._log_fresh:
            self._fresh.append(derivation)

    def drain_new_derivations(self) -> Tuple[Derivation, ...]:
        """Locally recorded derivations new since the last drain (and reset).

        The first call activates the log (derivations recorded before it are
        not replayed — they were visible to the caller's own graph walks).
        Re-records after a rederive/full clear reappear here; consumers
        dedup against what they already handled (the peer's per-target
        shipping memo does exactly that).
        """
        self._log_fresh = True
        fresh = tuple(self._fresh)
        self._fresh.clear()
        return fresh

    def record_remote(self, derivation: Derivation, anchor: bool = True) -> None:
        """Record a derivation shipped by a remote peer (survives recomputes).

        ``anchor=True`` marks the derivation's fact as one the sender
        actually shipped (a message-inserted fact); ``anchor=False`` is for
        the lineage intermediates that ride along, which live only as long
        as some anchored fact's lineage reaches them.
        """
        self._remote[derivation.key()] = derivation
        self._remote_facts.add(derivation.fact)
        self._remote_facts.update(derivation.support)
        if anchor:
            self._remote_anchors.add(derivation.fact)
        self.graph.add(derivation)

    def notify_stage(self, stage: int) -> None:
        """Inform the tracker that a new stage started (used in per-stage mode)."""
        if self.per_stage and stage != self._last_stage_seen:
            self.graph.clear()
        self._last_stage_seen = stage

    def reset_each_stage(self) -> "ProvenanceTracker":
        """Deprecated: switch to per-stage mode (clears the graph every stage).

        .. deprecated::
           The graph is incrementally maintained; per-stage clearing forces
           the engine back to full recomputes and is no longer needed.
        """
        warnings.warn(
            "ProvenanceTracker.reset_each_stage() is deprecated; the graph "
            "is now incrementally maintained and already reflects the "
            "current derivability state",
            DeprecationWarning, stacklevel=2,
        )
        self.per_stage = True
        return self

    # Engine maintenance hooks (the incremental evaluation paths) ---------- #

    def on_base_deleted(self, facts: Iterable[Fact]) -> None:
        """Input facts were deleted: their derivations (and dependents) die."""
        dead = set(facts)
        for fact in dead:
            self.graph.retract_fact(fact)
        # Reconciliation is only needed when the deletions touch the shipped
        # memory at all (anchors are heads, so they are covered too).
        if self._remote and not dead.isdisjoint(self._remote_facts):
            self._remote_anchors -= dead
            self._sync_remote(dead)

    def _sync_remote(self, dead: Set[Fact]) -> None:
        """Reconcile the shipped-derivation memory after retractions.

        A remembered entry survives only when (a) its head was not
        explicitly retracted, (b) the graph's support-count cascade did not
        kill it (otherwise a later full recompute would resurrect a
        derivation whose support died), and (c) its head is still reachable
        from a live anchor through the shipped support edges — lineage
        intermediates orphaned by an anchor's retraction are garbage
        collected from the memory *and* the graph.
        """
        by_head: Dict[Fact, List[Derivation]] = {}
        for (head, _, _), derivation in self._remote.items():
            by_head.setdefault(head, []).append(derivation)
        reachable: Set[Fact] = set()
        frontier = [fact for fact in self._remote_anchors if fact not in dead]
        while frontier:
            fact = frontier.pop()
            if fact in reachable:
                continue
            reachable.add(fact)
            for derivation in by_head.get(fact, ()):
                frontier.extend(derivation.support)
        survivors: Dict[Tuple[Fact, str, Tuple[Fact, ...]], Derivation] = {}
        for key, derivation in self._remote.items():
            head = key[0]
            if head in dead:
                continue
            if head not in reachable:
                self.graph.remove_derivation(derivation)
                continue
            if derivation in self.graph.derivations_of(head):
                survivors[key] = derivation
        self._remote = survivors
        self._remote_anchors &= {key[0] for key in survivors}
        self._remote_facts = set()
        for derivation in survivors.values():
            self._remote_facts.add(derivation.fact)
            self._remote_facts.update(derivation.support)

    def on_rederive(self, predicates: Iterable[str]) -> None:
        """The engine clears these predicates and re-fires their rules."""
        wanted = set(predicates)
        self.graph.retract_predicates(wanted)
        # Shipped derivations are not re-derivable locally: restore the ones
        # the predicate clear swept away.
        for derivation in self._remote.values():
            if derivation.fact.qualified_relation in wanted:
                self.graph.add(derivation)

    def on_full_recompute(self) -> None:
        """The engine recomputes everything: start from the shipped facts only."""
        self.graph.clear()
        for derivation in self._remote.values():
            self.graph.add(derivation)

    # Convenience pass-throughs -------------------------------------------- #

    def why(self, fact: Fact) -> Tuple[FrozenSet[Fact], ...]:
        """Why-provenance of ``fact``."""
        return self.graph.why(fact)

    def lineage(self, fact: Fact) -> FrozenSet[Fact]:
        """Transitive lineage of ``fact``."""
        return self.graph.lineage(fact)

    def base_relations(self, fact: Fact) -> FrozenSet[str]:
        """Base relations in the lineage of ``fact``."""
        return self.graph.base_relations(fact)

    def explain(self, fact: Fact) -> Explanation:
        """The full provenance story of ``fact``."""
        return self.graph.explain(fact)
