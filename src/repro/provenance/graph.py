"""Provenance graphs for derived facts.

Each time the engine's fixpoint derives a fact, the :class:`ProvenanceTracker`
records a :class:`Derivation`: the rule that fired and the facts that matched
its body.  The accumulated derivations form a bipartite graph (facts and
derivations) from which why-provenance and lineage queries are answered:

* :meth:`ProvenanceGraph.why` — the alternative sets of immediate supporting
  facts of a derived fact;
* :meth:`ProvenanceGraph.lineage` — the transitive closure down to base facts;
* :meth:`ProvenanceGraph.base_relations` — which relations the lineage of a
  fact draws from (the input of the access-control view policy);
* :meth:`ProvenanceGraph.depends_on_peer` — whether any supporting fact came
  from a given peer's relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.facts import Fact
from repro.core.rules import Rule


@dataclass(frozen=True)
class Derivation:
    """One application of a rule: the derived fact and its immediate support."""

    fact: Fact
    rule_id: str
    support: Tuple[Fact, ...]
    author: Optional[str] = None

    def __str__(self) -> str:
        supports = ", ".join(str(f) for f in self.support)
        return f"{self.fact} <= [{self.rule_id}] {supports}"


class ProvenanceGraph:
    """Accumulated derivations, indexed by derived fact."""

    def __init__(self):
        self._derivations: Dict[Fact, List[Derivation]] = {}
        self._all: List[Derivation] = []

    def __len__(self) -> int:
        return len(self._all)

    def add(self, derivation: Derivation) -> None:
        """Record one derivation (duplicates are kept out)."""
        existing = self._derivations.setdefault(derivation.fact, [])
        for known in existing:
            if known.rule_id == derivation.rule_id and known.support == derivation.support:
                return
        existing.append(derivation)
        self._all.append(derivation)

    def derivations_of(self, fact: Fact) -> Tuple[Derivation, ...]:
        """Every recorded derivation of ``fact``."""
        return tuple(self._derivations.get(fact, ()))

    def is_derived(self, fact: Fact) -> bool:
        """``True`` when at least one derivation of ``fact`` was recorded."""
        return fact in self._derivations

    def why(self, fact: Fact) -> Tuple[FrozenSet[Fact], ...]:
        """Why-provenance: the alternative sets of immediate supporting facts."""
        return tuple(frozenset(d.support) for d in self._derivations.get(fact, ()))

    def lineage(self, fact: Fact) -> FrozenSet[Fact]:
        """Transitive support of ``fact`` down to base facts (excludes ``fact`` itself)."""
        seen: Set[Fact] = set()
        frontier: List[Fact] = [fact]
        while frontier:
            current = frontier.pop()
            for derivation in self._derivations.get(current, ()):
                for supporting in derivation.support:
                    if supporting not in seen and supporting != fact:
                        seen.add(supporting)
                        frontier.append(supporting)
        return frozenset(seen)

    def base_facts(self, fact: Fact) -> FrozenSet[Fact]:
        """The subset of :meth:`lineage` that has no recorded derivation (base facts)."""
        if not self.is_derived(fact):
            return frozenset({fact})
        return frozenset(f for f in self.lineage(fact) if not self.is_derived(f))

    def base_relations(self, fact: Fact) -> FrozenSet[str]:
        """Qualified names of the base relations the lineage of ``fact`` draws from."""
        return frozenset(f.qualified_relation for f in self.base_facts(fact))

    def depends_on_peer(self, fact: Fact, peer: str) -> bool:
        """``True`` when some fact in the lineage belongs to a relation of ``peer``."""
        if fact.peer == peer and not self.is_derived(fact):
            return True
        return any(f.peer == peer for f in self.lineage(fact))

    def facts(self) -> Tuple[Fact, ...]:
        """Every derived fact with at least one recorded derivation."""
        return tuple(self._derivations)

    def clear(self) -> None:
        """Forget every derivation."""
        self._derivations.clear()
        self._all.clear()


class ProvenanceTracker:
    """Adapter between the engine's derivation hook and a :class:`ProvenanceGraph`.

    Attach it to an engine with::

        engine.provenance = ProvenanceTracker()

    after which every stage's derivations are recorded.  By default the graph
    is *cumulative*; call :meth:`reset_each_stage` to clear it at the start of
    every stage instead (the engine recomputes intensional relations from
    scratch each stage, so the cumulative graph can contain derivations whose
    support has since been deleted — cumulative mode is what the ACL layer
    wants for auditing, per-stage mode is what exact view policies want).
    """

    def __init__(self, per_stage: bool = False):
        self.graph = ProvenanceGraph()
        self.per_stage = per_stage
        self._last_stage_seen: Optional[int] = None

    def record(self, fact: Fact, rule: Rule, support: Tuple[Fact, ...]) -> None:
        """Engine hook: record one derivation."""
        self.graph.add(Derivation(fact=fact, rule_id=rule.rule_id, support=tuple(support),
                                  author=rule.author))

    def notify_stage(self, stage: int) -> None:
        """Inform the tracker that a new stage started (used in per-stage mode)."""
        if self.per_stage and stage != self._last_stage_seen:
            self.graph.clear()
        self._last_stage_seen = stage

    def reset_each_stage(self) -> "ProvenanceTracker":
        """Switch to per-stage mode (clears the graph at every new stage)."""
        self.per_stage = True
        return self

    # Convenience pass-throughs -------------------------------------------- #

    def why(self, fact: Fact) -> Tuple[FrozenSet[Fact], ...]:
        """Why-provenance of ``fact``."""
        return self.graph.why(fact)

    def lineage(self, fact: Fact) -> FrozenSet[Fact]:
        """Transitive lineage of ``fact``."""
        return self.graph.lineage(fact)

    def base_relations(self, fact: Fact) -> FrozenSet[str]:
        """Base relations in the lineage of ``fact``."""
        return self.graph.base_relations(fact)
