"""Why-provenance for derived WebdamLog facts.

The paper's access-control model derives default policies for views "from the
provenance of the base relations"; this package provides the provenance
machinery that model is built on, and is also used by the tests to check
which base facts support which derived facts.
"""

from repro.provenance.graph import (
    Derivation,
    Explanation,
    ProvenanceGraph,
    ProvenanceTracker,
)

__all__ = ["Derivation", "Explanation", "ProvenanceGraph", "ProvenanceTracker"]
