"""Reproduction of the WebdamLog system (SIGMOD 2013 demonstration).

WebdamLog is a distributed, datalog-style rule language in which autonomous
peers exchange both facts and rules.  The two distinguishing features of the
language are:

* **Distribution** — relation and peer names in rules may be variables, so a
  single rule can range over data held by many peers.
* **Delegation** — when the body of a rule refers to relations held by a
  remote peer, the local peer evaluates the longest local prefix of the body
  and installs the partially-instantiated remainder of the rule at the remote
  peer.  Programs therefore move around the network at run time.

This package provides:

* :mod:`repro.api` — **the public facade**: a fluent
  :class:`~repro.api.builder.SystemBuilder` (start from
  :func:`repro.api.system`), the :class:`~repro.api.facade.System` handle it
  builds, the pluggable :class:`~repro.api.Transport` protocol, and the
  query/subscription surface.
* :mod:`repro.core` — the WebdamLog language (terms, facts, rules, parser)
  and the per-peer engine (three-step computation stage, delegation).
* :mod:`repro.datalog` — a from-scratch datalog substrate (naive and
  seminaive fixpoint, stratified negation, aggregation) playing the role of
  the Bud engine used by the original system.
* :mod:`repro.runtime` — transports, peers, and a system orchestrator for
  running networks of WebdamLog peers either in-memory (deterministic,
  measurable rounds) or as separate OS processes.
* :mod:`repro.acl` — control of delegation (pending-delegation queues,
  trust), plus the discretionary / provenance-based access-control model the
  paper sketches.
* :mod:`repro.provenance` — why-provenance for derived facts.
* :mod:`repro.wrappers` — the wrapper framework and simulated Facebook,
  email and Dropbox services.
* :mod:`repro.wepic` — the Wepic conference picture-sharing application
  built from WebdamLog rules, including the three-peer demo scenario.
* :mod:`repro.workloads` — synthetic workload generators.
* :mod:`repro.bench` — measurement and reporting helpers used by the
  benchmark harness.
"""

from repro.core.terms import Constant, Variable
from repro.core.facts import Fact
from repro.core.rules import Atom, Rule
from repro.core.schema import RelationKind, RelationSchema, SchemaRegistry
from repro.core.parser import parse_program, parse_rule, parse_fact
from repro.core.engine import WebdamLogEngine
from repro.runtime.system import WebdamLogSystem
from repro.runtime.peer import Peer
from repro.api import SystemBuilder, system

__version__ = "1.0.0"

__all__ = [
    "system",
    "SystemBuilder",
    "Constant",
    "Variable",
    "Fact",
    "Atom",
    "Rule",
    "RelationKind",
    "RelationSchema",
    "SchemaRegistry",
    "parse_program",
    "parse_rule",
    "parse_fact",
    "WebdamLogEngine",
    "WebdamLogSystem",
    "Peer",
    "__version__",
]
