"""A virtual-clock harness driving many :class:`GossipNode` instances.

The simulator is how the gossip/membership protocol is exercised at scales
no laptop wants to open sockets for: hundreds of nodes, configurable link
latency and loss, deterministic seeds, and a clock that advances only when
told to.  Because :class:`~repro.net.node.GossipNode` is sans-io, the exact
same protocol code runs here and under the real TCP transport — the
benchmark's propagation numbers describe the protocol, not the harness.

Typical use (see ``benchmarks/bench_gossip_propagation.py``)::

    net = SimulatedGossipNetwork(latency=0.01, drop_probability=0.02, seed=7)
    for i in range(100):
        net.add_node(f"peer{i}")
    net.run(2.0)                      # let membership converge
    net.submit("peer0", message)      # inject application traffic
    net.run(1.0)
    delivered = net.drain("peer42")
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.events import NetEventLog
from repro.net.gossip import GossipConfig
from repro.net.membership import SwimConfig
from repro.net.node import GossipNode
from repro.runtime.messages import Message


class SimulatedGossipNetwork:
    """Virtual-time network of gossip nodes with lossy, latent links."""

    def __init__(self, *, latency: float = 0.01, latency_jitter: float = 0.0,
                 drop_probability: float = 0.0, seed: Optional[int] = None,
                 gossip: Optional[GossipConfig] = None,
                 swim: Optional[SwimConfig] = None,
                 events: Optional[NetEventLog] = None,
                 tick_interval: float = 0.05):
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be within [0, 1]")
        self.latency = latency
        self.latency_jitter = latency_jitter
        self.drop_probability = drop_probability
        self.gossip = gossip
        self.swim = swim
        self.events = events if events is not None else NetEventLog()
        self.tick_interval = tick_interval
        self.now = 0.0
        self.nodes: Dict[str, GossipNode] = {}
        self._rng = random.Random(seed)
        self._wire: List[Tuple[float, int, str, dict]] = []
        self._wire_seq = itertools.count()
        self.frames_sent = 0
        self.frames_dropped = 0

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #

    def add_node(self, name: str,
                 seeds: Optional[Sequence[str]] = None) -> GossipNode:
        """Create, start and connect one node.

        ``seeds`` names existing nodes to bootstrap from; when omitted, up
        to three random existing nodes are used (none for the first node).
        """
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        if seeds is None:
            existing = sorted(self.nodes)
            seeds = (self._rng.sample(existing, min(3, len(existing)))
                     if existing else [])
        seed_contacts = [(s, f"sim://{s}") for s in seeds]
        node = GossipNode(
            name, f"sim://{name}",
            gossip=self.gossip, swim=self.swim,
            seeds=seed_contacts, events=self.events,
            rng_seed=self._rng.randrange(2 ** 32), now=self.now,
        )
        self.nodes[name] = node
        self._transmit(node.start(self.now))
        return node

    def remove_node(self, name: str, graceful: bool = True) -> None:
        """Take a node out — announcing its leave, or crashing silently."""
        node = self.nodes.get(name)
        if node is None:
            return
        if graceful:
            self._transmit(node.leave(self.now))
        del self.nodes[name]

    # ------------------------------------------------------------------ #
    # traffic
    # ------------------------------------------------------------------ #

    def submit(self, origin: str, message: Message) -> None:
        """Inject one application message at ``origin``."""
        node = self.nodes[origin]
        self._transmit(node.submit(message, self.now))

    def drain(self, name: str) -> List[Message]:
        """Messages delivered to ``name`` since the last drain."""
        return self.nodes[name].drain_inbox()

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #

    def run(self, duration: float) -> None:
        """Advance the virtual clock, delivering frames and ticking nodes."""
        deadline = self.now + duration
        while self.now < deadline:
            step_end = min(self.now + self.tick_interval, deadline)
            self._deliver_until(step_end)
            self.now = step_end
            for node in list(self.nodes.values()):
                self._transmit(node.tick(self.now))

    def _deliver_until(self, deadline: float) -> None:
        while self._wire and self._wire[0][0] <= deadline:
            deliver_at, _, dest, frame = heapq.heappop(self._wire)
            node = self.nodes.get(dest)
            if node is None:
                continue  # crashed or departed: the frame hits a dead socket
            self.now = max(self.now, deliver_at)
            self._transmit(node.handle_frame(frame, self.now))

    def _transmit(self, outputs) -> None:
        for dest, _address, frame in outputs:
            self.frames_sent += 1
            if self.drop_probability and self._rng.random() < self.drop_probability:
                self.frames_dropped += 1
                self.events.emit("drop", "net", self.now, reason="loss",
                                 dest=dest, frame=frame.get("type"))
                continue
            delay = self.latency
            if self.latency_jitter:
                delay += self._rng.random() * self.latency_jitter
            heapq.heappush(self._wire, (self.now + delay,
                                        next(self._wire_seq), dest, frame))

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def membership_view(self, name: str) -> Dict[str, str]:
        """``peer -> status`` as seen by ``name`` (excluding itself)."""
        node = self.nodes[name]
        return {
            member.name: member.status
            for member in node.membership.members.values()
            if member.name != name
        }

    def converged(self) -> bool:
        """``True`` when every node can route to every other node.

        Routable means alive *or* suspect: under a lossy network, transient
        false suspicions are part of normal SWIM operation (they are refuted
        by the suspect's next incarnation bump), so requiring strictly-alive
        everywhere would never stabilise at nonzero drop probabilities.
        """
        live = set(self.nodes)
        for name, node in self.nodes.items():
            for other in live - {name}:
                if not node.membership.knows(other):
                    return False
        return True
