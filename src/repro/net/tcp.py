"""The asyncio TCP transport: real sockets under the round-based runtime.

:class:`TcpTransport` implements the synchronous
:class:`~repro.runtime.transport.Transport` protocol over localhost TCP.
Each registered peer gets its own :class:`~repro.net.node.GossipNode` and
its own listening socket; frames travel length-prefixed
(:mod:`repro.net.framing`) between ephemeral ports, so two peers of the
same deployment genuinely talk through the kernel's network stack — the
WEPIC scenario of the paper over actual connections.

Threading model: one background asyncio event loop runs in a daemon
thread and owns *all* gossip-node state (servers, connections, the
periodic SWIM/anti-entropy ticker).  The synchronous transport methods
called by the schedulers submit coroutines to that loop and wait for the
result, so no node is ever touched from two threads.

Because TCP has no global "no messages in flight" oracle, a networked
deployment cannot detect convergence from a single quiescent cycle the way
the in-memory transport can.  The transport therefore advertises a
``convergence_quiet_period``: the schedulers (see
:func:`repro.runtime.scheduler.settled`) require that many *consecutive*
settled cycles before declaring a fixpoint, and :meth:`advance_round`
briefly sleeps whenever every inbox is empty so those quiet cycles give the
network time to deliver straggling frames.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.errors import TransportError
from repro.net.events import NetEventLog
from repro.net.framing import FrameError, read_frame, write_frame
from repro.net.gossip import GossipConfig
from repro.net.membership import SwimConfig
from repro.net.node import GossipNode
from repro.runtime.inmemory import NetworkStats
from repro.runtime.messages import Message

#: Outbound connections kept open; the least recently used one is closed
#: when the cache outgrows this (bounds file descriptors at large scale).
MAX_CACHED_CONNECTIONS = 256

#: Seconds a synchronous transport call waits for the loop thread.
CALL_TIMEOUT = 30.0


class _Endpoint:
    """One registered peer's node plus its listening server."""

    def __init__(self, node: GossipNode, server: "asyncio.base_events.Server"):
        self.node = node
        self.server = server


class TcpTransport:
    """Localhost TCP transport with gossip dissemination and SWIM liveness.

    Parameters
    ----------
    host:
        Interface to bind the per-peer servers on (default ``127.0.0.1``).
    gossip / swim:
        Protocol tuning (:class:`~repro.net.gossip.GossipConfig`,
        :class:`~repro.net.membership.SwimConfig`); defaults suit localhost.
    log_path:
        Optional JSONL file receiving the structured network event log
        (the same format :class:`~repro.net.events.NetEventLog` writes for
        the simulator and :class:`RecordingTransport(log_path=...)`).
    quiet_period:
        Consecutive settled scheduler cycles required before a networked
        deployment is considered converged (default 5).
    poll_interval:
        How long :meth:`advance_round` sleeps when no inbox holds messages,
        yielding to the network before the next scheduler cycle.
    seed:
        Seeds peer-local RNGs (gossip target choice) for reproducibility.
    """

    def __init__(self, *, host: str = "127.0.0.1",
                 gossip: Optional[GossipConfig] = None,
                 swim: Optional[SwimConfig] = None,
                 events: Optional[NetEventLog] = None,
                 log_path: Optional[str] = None,
                 quiet_period: int = 5,
                 poll_interval: float = 0.02,
                 tick_interval: float = 0.05,
                 seed: Optional[int] = None):
        self.host = host
        self.gossip = gossip or GossipConfig()
        self.swim = swim or SwimConfig()
        if events is not None:
            self.events = events
        else:
            self.events = NetEventLog(path=log_path)
        self.convergence_quiet_period = quiet_period
        self.poll_interval = poll_interval
        self.tick_interval = tick_interval
        self.stats = NetworkStats()
        self._rng = random.Random(seed)
        self._round = 0
        self._endpoints: Dict[str, _Endpoint] = {}
        self._connections: "OrderedDict[str, Tuple[asyncio.StreamWriter, asyncio.Lock]]" = OrderedDict()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ticker: Optional[asyncio.Task] = None
        self._t0 = time.monotonic()
        self._closed = False

    # ------------------------------------------------------------------ #
    # event loop plumbing
    # ------------------------------------------------------------------ #

    def _now(self) -> float:
        return time.monotonic() - self._t0

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is not None:
            return self._loop
        if self._closed:
            raise TransportError("transport is closed")
        started = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            started.set()
            loop.run_forever()
            # drain callbacks scheduled during shutdown, then free the loop
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        self._thread = threading.Thread(target=run, name="repro-net-tcp",
                                        daemon=True)
        self._thread.start()
        started.wait(CALL_TIMEOUT)
        self._ticker = asyncio.run_coroutine_threadsafe(
            self._tick_forever(), self._loop)
        return self._loop

    def _call(self, coroutine):
        """Run ``coroutine`` on the loop thread and wait for its result."""
        loop = self._ensure_loop()
        future = asyncio.run_coroutine_threadsafe(coroutine, loop)
        return future.result(CALL_TIMEOUT)

    async def _tick_forever(self) -> None:
        while True:
            await asyncio.sleep(self.tick_interval)
            now = self._now()
            for endpoint in list(self._endpoints.values()):
                await self._transmit(endpoint.node.tick(now))

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(self, peer: str, address: Optional[str] = None) -> None:
        """Start a gossip node + listening socket for ``peer`` and join it
        to the deployment's existing members."""
        if peer in self._endpoints:
            return
        self._call(self._register_async(peer))

    async def _register_async(self, peer: str) -> None:
        existing = sorted(self._endpoints)
        seed_names = (self._rng.sample(existing, min(3, len(existing)))
                      if existing else [])
        seeds = [(name, self._endpoints[name].node.address)
                 for name in seed_names]
        node = GossipNode(
            peer, "",  # address assigned once the server's port is known
            gossip=self.gossip, swim=self.swim, seeds=seeds,
            events=self.events, rng_seed=self._rng.randrange(2 ** 32),
            now=self._now(),
        )

        async def handle(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
            await self._serve_connection(node, reader, writer)

        server = await asyncio.start_server(handle, self.host, 0)
        port = server.sockets[0].getsockname()[1]
        address = f"{self.host}:{port}"
        node.address = address
        node.membership.members[peer].address = address
        self.events.emit("register", peer, self._now(), address=address)
        self._endpoints[peer] = _Endpoint(node, server)
        await self._transmit(node.start(self._now()))

    def unregister(self, peer: str) -> None:
        """Announce the peer's departure, stop its server, drop its inbox."""
        endpoint = self._endpoints.get(peer)
        if endpoint is None:
            return
        self._call(self._unregister_async(peer))

    async def _unregister_async(self, peer: str) -> None:
        endpoint = self._endpoints.pop(peer, None)
        if endpoint is None:
            return
        now = self._now()
        await self._transmit(endpoint.node.leave(now))
        self.stats.messages_dropped += endpoint.node.inbox_size()
        endpoint.node.drain_inbox()
        endpoint.server.close()
        await endpoint.server.wait_closed()
        self.events.emit("unregister", peer, now)

    def peers(self) -> Tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    def is_registered(self, peer: str) -> bool:
        return peer in self._endpoints

    def address_of(self, peer: str) -> Optional[str]:
        endpoint = self._endpoints.get(peer)
        return endpoint.node.address if endpoint is not None else None

    # ------------------------------------------------------------------ #
    # connection handling (loop thread only)
    # ------------------------------------------------------------------ #

    async def _serve_connection(self, node: GossipNode,
                                reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                try:
                    outputs = node.handle_frame(frame, self._now())
                except (ValueError, KeyError) as exc:
                    self.events.emit("drop", node.name, self._now(),
                                     reason="malformed", error=str(exc))
                    continue
                await self._transmit(outputs)
        except (FrameError, ConnectionError):
            pass  # peer died mid-frame; SWIM will notice
        finally:
            writer.close()

    async def _transmit(self, outputs) -> None:
        for dest, address, frame in outputs:
            if not address:
                continue
            try:
                writer, lock = await self._connect(address)
                async with lock:
                    await write_frame(writer, frame)
            except (OSError, FrameError, asyncio.TimeoutError) as exc:
                self._connections.pop(address, None)
                self.events.emit("drop", dest, self._now(),
                                 reason="connect", address=address,
                                 error=type(exc).__name__)

    async def _connect(self, address: str):
        cached = self._connections.get(address)
        if cached is not None and not cached[0].is_closing():
            self._connections.move_to_end(address)
            return cached
        host, _, port = address.rpartition(":")
        _reader, writer = await asyncio.open_connection(host, int(port))
        entry = (writer, asyncio.Lock())
        self._connections[address] = entry
        while len(self._connections) > MAX_CACHED_CONNECTIONS:
            _, (old_writer, _) = self._connections.popitem(last=False)
            old_writer.close()
        return entry

    # ------------------------------------------------------------------ #
    # Transport protocol: deliver / collect
    # ------------------------------------------------------------------ #

    def send(self, message: Message) -> bool:
        """Submit a runtime message into the gossip mesh at its sender."""
        endpoint = self._endpoints.get(message.sender)
        if endpoint is None:
            raise TransportError(
                f"cannot send from unregistered peer {message.sender!r}")
        if (message.recipient not in self._endpoints
                and not endpoint.node.membership.knows(message.recipient)):
            raise TransportError(
                f"cannot deliver message from {message.sender}: unknown peer "
                f"{message.recipient!r}"
            )
        self.stats.messages_sent += 1
        self.stats.by_kind[message.kind()] += 1
        self.stats.by_link[(message.sender, message.recipient)] += 1
        self.stats.payload_items += message.payload_size()
        self._call(self._submit_async(message))
        return True

    async def _submit_async(self, message: Message) -> None:
        endpoint = self._endpoints.get(message.sender)
        if endpoint is not None:
            await self._transmit(endpoint.node.submit(message, self._now()))

    def send_all(self, messages: Iterable[Message]) -> int:
        return sum(1 for message in messages if self.send(message))

    def receive(self, peer: str) -> List[Message]:
        endpoint = self._endpoints.get(peer)
        if endpoint is None:
            return []
        delivered = self._call(self._drain_async(peer))
        self.stats.messages_delivered += len(delivered)
        return delivered

    async def _drain_async(self, peer: str) -> List[Message]:
        endpoint = self._endpoints.get(peer)
        return endpoint.node.drain_inbox() if endpoint is not None else []

    def advance_round(self) -> int:
        """Mark a round boundary; when nothing is deliverable, yield to the
        network briefly so gossip frames in flight can land."""
        self._round += 1
        if not self.has_in_flight():
            time.sleep(self.poll_interval)
        return self._round

    def pending_count(self, peer: Optional[str] = None) -> int:
        if peer is not None:
            endpoint = self._endpoints.get(peer)
            return endpoint.node.inbox_size() if endpoint is not None else 0
        return sum(e.node.inbox_size() for e in self._endpoints.values())

    def due_count(self, peer: str) -> int:
        return self.pending_count(peer)

    def has_in_flight(self) -> bool:
        """``True`` when a delivered-but-undrained message is observable.

        Frames inside the kernel's socket buffers are *not* observable —
        that blind spot is exactly why ``convergence_quiet_period > 1``.
        """
        return any(e.node.inbox_size() for e in self._endpoints.values())

    def reset_stats(self) -> NetworkStats:
        stats = self.stats
        self.stats = NetworkStats()
        return stats

    # ------------------------------------------------------------------ #
    # inspection / lifecycle
    # ------------------------------------------------------------------ #

    def membership_view(self, peer: str) -> Dict[str, str]:
        """``other_peer -> status`` as seen by ``peer``'s gossip node."""
        endpoint = self._endpoints.get(peer)
        if endpoint is None:
            return {}
        return {
            member.name: member.status
            for member in endpoint.node.membership.members.values()
            if member.name != peer
        }

    def close(self) -> None:
        """Stop the ticker, close every server, connection and the loop."""
        if self._closed:
            return
        self._closed = True
        if self._loop is None:
            self.events.close()
            return
        if self._ticker is not None:
            self._ticker.cancel()
        future = asyncio.run_coroutine_threadsafe(self._close_async(),
                                                  self._loop)
        try:
            future.result(CALL_TIMEOUT)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(CALL_TIMEOUT)
            self._loop = None
            self.events.close()

    async def _close_async(self) -> None:
        for endpoint in self._endpoints.values():
            endpoint.server.close()
        for writer, _ in self._connections.values():
            writer.close()
        self._connections.clear()
        self._endpoints.clear()

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
