"""The frame vocabulary of the gossip/membership protocol.

Everything a :class:`~repro.net.node.GossipNode` puts on the wire is one of
these frames, each a frozen dataclass with an exact ``to_wire`` /
:func:`frame_from_wire` round-trip (the same pattern as
:mod:`repro.runtime.messages`).  Application traffic — the runtime's
:class:`~repro.runtime.messages.Message` payloads — travels inside
:class:`EnvelopeFrame`, whose ``message`` field is the message's own wire
dictionary, so the framing layer never re-encodes facts, rules, derivation
closures or grants.

Frame kinds (see ``docs/net-protocol.md`` for the full spec):

* ``join`` / ``leave`` — membership announcements;
* ``ping`` / ``ping-req`` / ``ack`` — SWIM liveness probing (direct and
  indirect);
* ``envelope`` — one application message riding push-gossip;
* ``digest`` / ``pull`` — anti-entropy: offer recent envelope ids, request
  the ones you are missing.

Membership state changes are *piggybacked*: most frames carry an
``updates`` list of :class:`MemberUpdate` records, so dissemination of
joins, suspicions and deaths costs no dedicated messages once the initial
announcement is out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

__all__ = [
    "MemberUpdate",
    "JoinFrame",
    "LeaveFrame",
    "PingFrame",
    "PingReqFrame",
    "AckFrame",
    "EnvelopeFrame",
    "DigestFrame",
    "PullFrame",
    "Frame",
    "frame_from_wire",
]


@dataclass(frozen=True)
class MemberUpdate:
    """One piggybacked membership assertion: ``peer`` is ``status`` at
    ``incarnation`` (reachable at ``address`` when known)."""

    peer: str
    status: str  # "alive", "suspect", "dead", "left"
    incarnation: int
    address: str = ""

    def to_wire(self) -> Dict[str, Any]:
        return {"peer": self.peer, "status": self.status,
                "incarnation": self.incarnation, "address": self.address}

    @staticmethod
    def from_wire(encoded: Dict[str, Any]) -> "MemberUpdate":
        return MemberUpdate(
            peer=encoded["peer"], status=encoded["status"],
            incarnation=encoded.get("incarnation", 0),
            address=encoded.get("address", ""),
        )


def _encode_updates(updates: Tuple[MemberUpdate, ...]) -> list:
    return [u.to_wire() for u in updates]


def _decode_updates(encoded) -> Tuple[MemberUpdate, ...]:
    return tuple(MemberUpdate.from_wire(u) for u in (encoded or ()))


@dataclass(frozen=True)
class JoinFrame:
    """A peer announces itself (sent to seed contacts when it starts)."""

    peer: str
    address: str
    incarnation: int = 0
    updates: Tuple[MemberUpdate, ...] = ()

    def to_wire(self) -> Dict[str, Any]:
        return {"type": "join", "peer": self.peer, "address": self.address,
                "incarnation": self.incarnation,
                "updates": _encode_updates(self.updates)}


@dataclass(frozen=True)
class LeaveFrame:
    """A peer announces its graceful departure."""

    peer: str
    incarnation: int = 0

    def to_wire(self) -> Dict[str, Any]:
        return {"type": "leave", "peer": self.peer,
                "incarnation": self.incarnation}


@dataclass(frozen=True)
class PingFrame:
    """Direct liveness probe; ``seq`` correlates the awaited ack."""

    origin: str
    seq: int
    updates: Tuple[MemberUpdate, ...] = ()

    def to_wire(self) -> Dict[str, Any]:
        return {"type": "ping", "origin": self.origin, "seq": self.seq,
                "updates": _encode_updates(self.updates)}


@dataclass(frozen=True)
class PingReqFrame:
    """Indirect probe: ``origin`` asks the receiver to ping ``target``."""

    origin: str
    target: str
    seq: int

    def to_wire(self) -> Dict[str, Any]:
        return {"type": "ping-req", "origin": self.origin,
                "target": self.target, "seq": self.seq}


@dataclass(frozen=True)
class AckFrame:
    """Probe answer; ``on_behalf_of`` names the probed peer when the ack
    travels back through a ping-req intermediary."""

    origin: str
    seq: int
    on_behalf_of: str = ""
    updates: Tuple[MemberUpdate, ...] = ()

    def to_wire(self) -> Dict[str, Any]:
        return {"type": "ack", "origin": self.origin, "seq": self.seq,
                "on_behalf_of": self.on_behalf_of,
                "updates": _encode_updates(self.updates)}


@dataclass(frozen=True)
class EnvelopeFrame:
    """One application message riding the gossip mesh.

    ``envelope_id`` dedupes multi-path deliveries, ``hops`` bounds the
    flood, ``message`` is the runtime message's wire dictionary
    (:meth:`repro.runtime.messages.Message.to_wire`).
    """

    envelope_id: str
    origin: str
    recipient: str
    hops: int
    message: Dict[str, Any] = field(default_factory=dict)
    updates: Tuple[MemberUpdate, ...] = ()

    def to_wire(self) -> Dict[str, Any]:
        return {"type": "envelope", "id": self.envelope_id,
                "origin": self.origin, "recipient": self.recipient,
                "hops": self.hops, "message": self.message,
                "updates": _encode_updates(self.updates)}


@dataclass(frozen=True)
class DigestFrame:
    """Anti-entropy offer: the envelope ids ``peer`` has seen recently."""

    peer: str
    ids: Tuple[str, ...] = ()
    updates: Tuple[MemberUpdate, ...] = ()

    def to_wire(self) -> Dict[str, Any]:
        return {"type": "digest", "peer": self.peer, "ids": list(self.ids),
                "updates": _encode_updates(self.updates)}


@dataclass(frozen=True)
class PullFrame:
    """Anti-entropy request: send me the envelopes with these ids."""

    peer: str
    want: Tuple[str, ...] = ()

    def to_wire(self) -> Dict[str, Any]:
        return {"type": "pull", "peer": self.peer, "want": list(self.want)}


#: Union of every frame kind (typing convenience for the node layer).
Frame = (JoinFrame, LeaveFrame, PingFrame, PingReqFrame, AckFrame,
         EnvelopeFrame, DigestFrame, PullFrame)


def frame_from_wire(encoded: Dict[str, Any]):
    """Decode a frame dictionary produced by any frame's ``to_wire``."""
    kind = encoded.get("type")
    if kind == "join":
        return JoinFrame(peer=encoded["peer"], address=encoded["address"],
                         incarnation=encoded.get("incarnation", 0),
                         updates=_decode_updates(encoded.get("updates")))
    if kind == "leave":
        return LeaveFrame(peer=encoded["peer"],
                          incarnation=encoded.get("incarnation", 0))
    if kind == "ping":
        return PingFrame(origin=encoded["origin"], seq=encoded["seq"],
                         updates=_decode_updates(encoded.get("updates")))
    if kind == "ping-req":
        return PingReqFrame(origin=encoded["origin"], target=encoded["target"],
                            seq=encoded["seq"])
    if kind == "ack":
        return AckFrame(origin=encoded["origin"], seq=encoded["seq"],
                        on_behalf_of=encoded.get("on_behalf_of", ""),
                        updates=_decode_updates(encoded.get("updates")))
    if kind == "envelope":
        return EnvelopeFrame(envelope_id=encoded["id"],
                             origin=encoded["origin"],
                             recipient=encoded["recipient"],
                             hops=encoded.get("hops", 0),
                             message=encoded.get("message", {}),
                             updates=_decode_updates(encoded.get("updates")))
    if kind == "digest":
        return DigestFrame(peer=encoded["peer"],
                           ids=tuple(encoded.get("ids", ())),
                           updates=_decode_updates(encoded.get("updates")))
    if kind == "pull":
        return PullFrame(peer=encoded["peer"],
                         want=tuple(encoded.get("want", ())))
    raise ValueError(f"unknown frame type {kind!r}")
