"""The sans-io gossip/membership node.

:class:`GossipNode` is the protocol brain shared by every I/O backend: the
asyncio TCP transport (:mod:`repro.net.tcp`) and the virtual-clock
simulator (:mod:`repro.net.sim`) both drive the *same* code, which is what
makes the large-scale benchmark results transferable to the socket path and
the protocol unit-testable without ever opening a socket.

The node never performs I/O.  Every entry point takes the current time and
returns the frames to transmit as ``(peer_name, address, wire_dict)``
triples; the caller owns delivery:

* :meth:`start` — announce this node to its seed contacts;
* :meth:`handle_frame` — process one incoming frame;
* :meth:`tick` — advance the periodic machinery (SWIM probes, suspect
  expiry, anti-entropy digests);
* :meth:`submit` — inject one application
  :class:`~repro.runtime.messages.Message` into the gossip mesh;
* :meth:`leave` — announce graceful departure.

Messages addressed to this node surface in :meth:`drain_inbox`, decoded and
deduplicated; everything the node does is reported to its
:class:`~repro.net.events.NetEventLog`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.events import NetEventLog
from repro.net.frames import (
    AckFrame,
    DigestFrame,
    EnvelopeFrame,
    JoinFrame,
    LeaveFrame,
    MemberUpdate,
    PingFrame,
    PingReqFrame,
    PullFrame,
    frame_from_wire,
)
from repro.net.gossip import GossipBuffer, GossipConfig, next_envelope_id
from repro.net.membership import (
    ALIVE,
    LEFT,
    MembershipTable,
    SwimConfig,
)
from repro.runtime.messages import Message, message_from_wire

#: One outgoing transmission: (destination peer, destination address, frame
#: wire dictionary).
Output = Tuple[str, str, dict]


@dataclass
class _Probe:
    """One outstanding SWIM probe awaiting its ack."""

    target: str
    sent_at: float
    indirect_at: Optional[float] = None


class GossipNode:
    """One peer's protocol state: membership + gossip + failure detection."""

    def __init__(self, name: str, address: str, *,
                 gossip: Optional[GossipConfig] = None,
                 swim: Optional[SwimConfig] = None,
                 seeds: Sequence[Tuple[str, str]] = (),
                 events: Optional[NetEventLog] = None,
                 rng_seed: Optional[int] = None,
                 now: float = 0.0):
        self.name = name
        self.address = address
        self.gossip = gossip or GossipConfig()
        self.swim = swim or SwimConfig()
        self.events = events if events is not None else NetEventLog()
        self.membership = MembershipTable(name, address, self.swim, now=now)
        self.buffer = GossipBuffer(self.gossip)
        self._rng = random.Random(rng_seed if rng_seed is not None
                                  else hash(name) & 0xFFFFFFFF)
        self._seeds = tuple(seeds)
        # Seeds are provisional contacts, recorded as alive so frames can be
        # addressed to them before any protocol exchange confirms them.
        for seed_name, seed_address in self._seeds:
            if seed_name != name:
                self.membership.apply(
                    MemberUpdate(seed_name, ALIVE, 0, seed_address), now)
        self._inbox: List[Message] = []
        self._seq = 0
        self._probes: Dict[int, _Probe] = {}
        # seq of the ping we sent on behalf of someone -> (requester, their seq)
        self._relaying: Dict[int, Tuple[str, int]] = {}
        self._probe_ring: List[str] = []
        jitter = self._rng.random()
        self._next_probe_at = now + self.swim.ping_interval * (0.5 + jitter)
        self._next_anti_entropy_at = now + self.gossip.anti_entropy_interval * (
            0.5 + self._rng.random())
        self.left = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self, now: float) -> List[Output]:
        """Announce this node to its seed contacts."""
        self.events.emit("join", self.name, now, address=self.address)
        outputs: List[Output] = []
        for seed_name, seed_address in self._seeds:
            if seed_name == self.name:
                continue
            outputs.append((seed_name, seed_address, JoinFrame(
                peer=self.name, address=self.address,
                incarnation=self.membership.incarnation,
                updates=self.membership.piggyback(),
            ).to_wire()))
        return outputs

    def leave(self, now: float) -> List[Output]:
        """Announce graceful departure to a fanout of live peers."""
        update = self.membership.leave(now)
        self.left = True
        self.events.emit("leave", self.name, now)
        frame = LeaveFrame(peer=self.name,
                           incarnation=update.incarnation).to_wire()
        return [(peer, address, frame)
                for peer, address in self._sample_targets(self.gossip.fanout)]

    # ------------------------------------------------------------------ #
    # application traffic
    # ------------------------------------------------------------------ #

    def submit(self, message: Message, now: float) -> List[Output]:
        """Wrap one runtime message in an envelope and push-gossip it."""
        envelope = EnvelopeFrame(
            envelope_id=next_envelope_id(self.name),
            origin=self.name,
            recipient=message.recipient,
            hops=0,
            message=message.to_wire(),
        )
        self.events.emit("send", self.name, now,
                         envelope=envelope.envelope_id,
                         message_id=message.message_id,
                         kind=message.kind(), recipient=message.recipient)
        return self._accept_envelope(envelope, now, received_from=None)

    def drain_inbox(self) -> List[Message]:
        """Messages addressed to this node, decoded, exactly once each."""
        delivered = self._inbox
        self._inbox = []
        return delivered

    def inbox_size(self) -> int:
        return len(self._inbox)

    # ------------------------------------------------------------------ #
    # frame handling
    # ------------------------------------------------------------------ #

    def handle_frame(self, wire_frame: dict, now: float) -> List[Output]:
        """Process one incoming frame; returns the frames to send back out."""
        frame = frame_from_wire(wire_frame)
        updates = getattr(frame, "updates", ())
        if updates:
            self._apply_updates(updates, now)
        if isinstance(frame, JoinFrame):
            return self._on_join(frame, now)
        if isinstance(frame, LeaveFrame):
            transition = self.membership.apply(
                MemberUpdate(frame.peer, LEFT, frame.incarnation), now)
            if transition:
                self.events.emit("left", self.name, now, peer=frame.peer)
            return []
        if isinstance(frame, PingFrame):
            return self._on_ping(frame, now)
        if isinstance(frame, PingReqFrame):
            return self._on_ping_req(frame, now)
        if isinstance(frame, AckFrame):
            return self._on_ack(frame, now)
        if isinstance(frame, EnvelopeFrame):
            return self._accept_envelope(frame, now,
                                         received_from=frame.origin)
        if isinstance(frame, DigestFrame):
            return self._on_digest(frame, now)
        if isinstance(frame, PullFrame):
            return self._on_pull(frame, now)
        raise TypeError(f"unhandled frame {frame!r}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # periodic machinery
    # ------------------------------------------------------------------ #

    def tick(self, now: float) -> List[Output]:
        """Advance probing, suspicion expiry and anti-entropy."""
        if self.left:
            return []
        outputs: List[Output] = []
        outputs.extend(self._check_probes(now))
        for name in self.membership.expire_suspects(now):
            self.events.emit("dead", self.name, now, peer=name)
        if now >= self._next_probe_at:
            self._next_probe_at = now + self.swim.ping_interval
            outputs.extend(self._send_probe(now))
        if now >= self._next_anti_entropy_at:
            self._next_anti_entropy_at = now + self.gossip.anti_entropy_interval
            outputs.extend(self._send_digest(now))
        return outputs

    # ------------------------------------------------------------------ #
    # membership internals
    # ------------------------------------------------------------------ #

    def _apply_updates(self, updates: Sequence[MemberUpdate],
                       now: float) -> None:
        for update in updates:
            transition = self.membership.apply(update, now)
            if transition and transition != ALIVE:
                self.events.emit(transition, self.name, now, peer=update.peer)

    def _on_join(self, frame: JoinFrame, now: float) -> List[Output]:
        transition = self.membership.apply(
            MemberUpdate(frame.peer, ALIVE, frame.incarnation, frame.address),
            now)
        if transition:
            self.events.emit("member-joined", self.name, now, peer=frame.peer)
        # Welcome the joiner with our whole membership view and our digest,
        # so it can pull the envelopes it missed before existing.
        welcome = DigestFrame(peer=self.name, ids=self.buffer.digest(),
                              updates=self.membership.full_view()).to_wire()
        return [(frame.peer, frame.address, welcome)]

    def _send_probe(self, now: float) -> List[Output]:
        target = self._next_probe_target()
        if target is None:
            return []
        address = self.membership.address_of(target)
        if address is None:
            return []
        self._seq += 1
        self._probes[self._seq] = _Probe(target=target, sent_at=now)
        frame = PingFrame(origin=self.name, seq=self._seq,
                          updates=self.membership.piggyback()).to_wire()
        return [(target, address, frame)]

    def _next_probe_target(self) -> Optional[str]:
        # SWIM's round-robin over a shuffled ring: every member is probed
        # within one traversal, in an order fresh each cycle.
        routable = set(self.membership.routable_peers())
        self._probe_ring = [p for p in self._probe_ring if p in routable]
        if not self._probe_ring:
            ring = sorted(routable)
            self._rng.shuffle(ring)
            self._probe_ring = ring
        return self._probe_ring.pop() if self._probe_ring else None

    def _check_probes(self, now: float) -> List[Output]:
        outputs: List[Output] = []
        for seq in list(self._probes):
            probe = self._probes[seq]
            status = self.membership.status_of(probe.target)
            if status not in (ALIVE,):
                del self._probes[seq]
                continue
            if probe.indirect_at is None:
                if now - probe.sent_at >= self.swim.ping_timeout:
                    probe.indirect_at = now
                    helpers = self._sample_targets(
                        self.swim.ping_req_fanout, exclude={probe.target})
                    if not helpers:
                        self._declare_suspect(probe.target, now)
                        del self._probes[seq]
                        continue
                    frame = PingReqFrame(origin=self.name,
                                         target=probe.target,
                                         seq=seq).to_wire()
                    outputs.extend((peer, address, frame)
                                   for peer, address in helpers)
            elif now - probe.indirect_at >= self.swim.ping_req_timeout:
                self._declare_suspect(probe.target, now)
                del self._probes[seq]
        return outputs

    def _declare_suspect(self, target: str, now: float) -> None:
        if self.membership.suspect(target, now):
            self.events.emit("suspect", self.name, now, peer=target)

    def _on_ping(self, frame: PingFrame, now: float) -> List[Output]:
        address = self.membership.address_of(frame.origin)
        if address is None:
            return []
        ack = AckFrame(origin=self.name, seq=frame.seq,
                       updates=self.membership.piggyback()).to_wire()
        return [(frame.origin, address, ack)]

    def _on_ping_req(self, frame: PingReqFrame, now: float) -> List[Output]:
        address = self.membership.address_of(frame.target)
        if address is None:
            return []
        self._seq += 1
        self._relaying[self._seq] = (frame.origin, frame.seq)
        ping = PingFrame(origin=self.name, seq=self._seq,
                         updates=self.membership.piggyback()).to_wire()
        return [(frame.target, address, ping)]

    def _on_ack(self, frame: AckFrame, now: float) -> List[Output]:
        acked = frame.on_behalf_of or frame.origin
        probe = self._probes.pop(frame.seq, None)
        if probe is not None:
            # The probed member answered (directly or indirectly): assert
            # aliveness so any circulating suspicion is cancelled.
            member = self.membership.member(acked)
            if member is not None and member.status != ALIVE:
                self.membership.apply(
                    MemberUpdate(acked, ALIVE, member.incarnation + 1,
                                 member.address), now)
            return []
        relay = self._relaying.pop(frame.seq, None)
        if relay is not None:
            requester, their_seq = relay
            address = self.membership.address_of(requester)
            if address is None:
                return []
            ack = AckFrame(origin=self.name, seq=their_seq,
                           on_behalf_of=frame.origin,
                           updates=self.membership.piggyback()).to_wire()
            return [(requester, address, ack)]
        return []

    # ------------------------------------------------------------------ #
    # gossip internals
    # ------------------------------------------------------------------ #

    def _accept_envelope(self, envelope: EnvelopeFrame, now: float,
                         received_from: Optional[str]) -> List[Output]:
        if not self.buffer.observe(envelope):
            self.events.emit("drop", self.name, now, reason="duplicate",
                             envelope=envelope.envelope_id)
            return []
        if envelope.recipient == self.name:
            message = message_from_wire(envelope.message)
            self._inbox.append(message)
            self.events.emit("deliver", self.name, now,
                             envelope=envelope.envelope_id,
                             message_id=message.message_id,
                             origin=envelope.origin, hops=envelope.hops)
            return []
        if envelope.hops >= self.gossip.max_hops:
            self.events.emit("drop", self.name, now, reason="ttl",
                             envelope=envelope.envelope_id)
            return []
        return self._spray(envelope, now, received_from)

    def _spray(self, envelope: EnvelopeFrame, now: float,
               received_from: Optional[str]) -> List[Output]:
        """Forward an envelope: always towards its recipient when the
        address is known, plus ``fanout`` random routable peers."""
        exclude = {self.name, envelope.origin}
        if received_from:
            exclude.add(received_from)
        targets: List[Tuple[str, str]] = []
        recipient_address = self.membership.address_of(envelope.recipient)
        if recipient_address is not None \
                and self.membership.knows(envelope.recipient):
            targets.append((envelope.recipient, recipient_address))
            exclude.add(envelope.recipient)
        targets.extend(self._sample_targets(self.gossip.fanout,
                                            exclude=exclude))
        if not targets:
            return []
        forwarded = EnvelopeFrame(
            envelope_id=envelope.envelope_id, origin=envelope.origin,
            recipient=envelope.recipient, hops=envelope.hops + 1,
            message=envelope.message,
            updates=self.membership.piggyback(),
        ).to_wire()
        self.events.emit("forward", self.name, now,
                         envelope=envelope.envelope_id,
                         targets=[peer for peer, _ in targets])
        return [(peer, address, forwarded) for peer, address in targets]

    def _send_digest(self, now: float) -> List[Output]:
        targets = self._sample_targets(1)
        if not targets:
            return []
        peer, address = targets[0]
        self.events.emit("digest", self.name, now, peer=peer,
                         ids=len(self.buffer))
        # Anti-entropy carries the full membership view, not just the
        # piggyback queue: once retransmit budgets are exhausted, this is
        # the channel that repairs membership knowledge gaps (a node the
        # flood never told about some peer learns of it here).
        frame = DigestFrame(peer=self.name, ids=self.buffer.digest(),
                            updates=self.membership.full_view()).to_wire()
        return [(peer, address, frame)]

    def _on_digest(self, frame: DigestFrame, now: float) -> List[Output]:
        address = self.membership.address_of(frame.peer)
        if address is None:
            return []
        outputs: List[Output] = []
        # Push what the offerer lacks...
        for envelope in self.buffer.not_in(frame.ids):
            outputs.append((frame.peer, address, EnvelopeFrame(
                envelope_id=envelope.envelope_id, origin=envelope.origin,
                recipient=envelope.recipient, hops=envelope.hops,
                message=envelope.message,
            ).to_wire()))
        # ...and pull what we lack ourselves.
        want = self.buffer.missing(frame.ids)
        if want:
            self.events.emit("pull", self.name, now, peer=frame.peer,
                             count=len(want))
            outputs.append((frame.peer, address,
                            PullFrame(peer=self.name, want=want).to_wire()))
        return outputs

    def _on_pull(self, frame: PullFrame, now: float) -> List[Output]:
        address = self.membership.address_of(frame.peer)
        if address is None:
            return []
        return [
            (frame.peer, address, EnvelopeFrame(
                envelope_id=envelope.envelope_id, origin=envelope.origin,
                recipient=envelope.recipient, hops=envelope.hops,
                message=envelope.message,
            ).to_wire())
            for envelope in self.buffer.take(frame.want)
        ]

    # ------------------------------------------------------------------ #
    # target selection
    # ------------------------------------------------------------------ #

    def _sample_targets(self, count: int,
                        exclude: Optional[set] = None
                        ) -> List[Tuple[str, str]]:
        """Up to ``count`` random routable (peer, address) pairs."""
        excluded = exclude or set()
        candidates = [
            (peer, self.membership.address_of(peer))
            for peer in self.membership.routable_peers()
            if peer not in excluded
        ]
        candidates = [(p, a) for p, a in candidates if a]
        if len(candidates) <= count:
            return candidates
        return self._rng.sample(candidates, count)
