"""Structured JSONL event logging for the networked runtime.

Every component of :mod:`repro.net` — the gossip nodes, the SWIM failure
detector, the TCP transport — reports what it does through one
:class:`NetEventLog`: an append-only stream of flat JSON objects, one per
line, in the spirit of :class:`~repro.runtime.transport.RecordingTransport`
but serialisable and shared across transports.  The same sink is accepted by
``RecordingTransport(log_path=...)``, so an in-memory run and a TCP run of
the same deployment produce event streams a single analyzer can consume
(``benchmarks/bench_gossip_propagation.py`` is that analyzer).

Event schema — every record carries at least::

    {"ts": <seconds>, "node": <peer name>, "action": <kind>}

with ``action`` one of ``send``, ``deliver``, ``drop``, ``forward``,
``join``, ``leave``, ``alive``, ``suspect``, ``dead``, ``register``,
``unregister``, ``digest``, ``pull`` — plus action-specific fields
(``message_id``, ``envelope``, ``peer``, ``reason``...).  Timestamps are
caller-provided, so simulated runs log virtual time and TCP runs log
monotonic wall clock; within one log they are mutually comparable, which is
all the latency analysis needs.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


class NetEventLog:
    """A thread-safe event sink: in-memory list plus an optional JSONL file.

    ``path=None`` keeps events only in memory (tests, short benchmarks);
    with a path every event is appended to the file as one JSON line the
    moment it is emitted, so a crashed run still leaves its trace behind.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None,
                 keep_in_memory: bool = True):
        self.path = Path(path) if path is not None else None
        self.keep_in_memory = keep_in_memory
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._file = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("a", encoding="utf-8")

    def emit(self, action: str, node: str, ts: float, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the record that was written."""
        record: Dict[str, Any] = {"ts": round(ts, 6), "node": node,
                                  "action": action}
        record.update(fields)
        with self._lock:
            if self.keep_in_memory:
                self._events.append(record)
            if self._file is not None:
                self._file.write(json.dumps(record, sort_keys=False,
                                            default=str) + "\n")
                self._file.flush()
        return record

    def events(self, action: Optional[str] = None,
               node: Optional[str] = None) -> List[Dict[str, Any]]:
        """The recorded events, optionally filtered by action and/or node."""
        with self._lock:
            selected = list(self._events)
        if action is not None:
            selected = [e for e in selected if e["action"] == action]
        if node is not None:
            selected = [e for e in selected if e["node"] == node]
        return selected

    def clear(self) -> List[Dict[str, Any]]:
        """Return the in-memory events recorded so far and start fresh."""
        with self._lock:
            events = self._events
            self._events = []
        return events

    def close(self) -> None:
        """Flush and close the JSONL file (no-op for in-memory logs)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __enter__(self) -> "NetEventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL event file back into a list of event records."""
    records: List[Dict[str, Any]] = []
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
