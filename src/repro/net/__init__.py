"""repro.net — networked transport: TCP framing, gossip, SWIM membership.

The package layers bottom-up:

* :mod:`repro.net.framing` — length-prefixed JSON frames on a byte stream;
* :mod:`repro.net.frames` — the protocol vocabulary (join/leave, ping/ack,
  envelope, digest/pull) with exact wire round-trips;
* :mod:`repro.net.membership` — SWIM-style membership with incarnation
  numbers and the suspect → dead state machine;
* :mod:`repro.net.gossip` — push-gossip envelope buffer and anti-entropy
  digests;
* :mod:`repro.net.node` — the sans-io node composing the two protocols;
* :mod:`repro.net.sim` — a virtual-clock many-node harness (benchmarks);
* :mod:`repro.net.tcp` — the asyncio TCP
  :class:`~repro.runtime.transport.Transport` used by
  ``system().transport("tcp")``;
* :mod:`repro.net.events` — the structured JSONL event log shared by all of
  the above.

See ``docs/net-protocol.md`` for the protocol specification.
"""

from repro.net.events import NetEventLog, read_events
from repro.net.frames import (
    AckFrame,
    DigestFrame,
    EnvelopeFrame,
    JoinFrame,
    LeaveFrame,
    MemberUpdate,
    PingFrame,
    PingReqFrame,
    PullFrame,
    frame_from_wire,
)
from repro.net.framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    decode_body,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.net.gossip import GossipBuffer, GossipConfig
from repro.net.membership import (
    ALIVE,
    DEAD,
    LEFT,
    SUSPECT,
    Member,
    MembershipTable,
    SwimConfig,
)
from repro.net.node import GossipNode
from repro.net.sim import SimulatedGossipNetwork
from repro.net.tcp import TcpTransport

__all__ = [
    "NetEventLog",
    "read_events",
    "MemberUpdate",
    "JoinFrame",
    "LeaveFrame",
    "PingFrame",
    "PingReqFrame",
    "AckFrame",
    "EnvelopeFrame",
    "DigestFrame",
    "PullFrame",
    "frame_from_wire",
    "FrameError",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_body",
    "read_frame",
    "write_frame",
    "GossipBuffer",
    "GossipConfig",
    "ALIVE",
    "SUSPECT",
    "DEAD",
    "LEFT",
    "Member",
    "MembershipTable",
    "SwimConfig",
    "GossipNode",
    "SimulatedGossipNetwork",
    "TcpTransport",
]
