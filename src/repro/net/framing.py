"""Length-prefixed JSON wire framing.

One frame on the wire is a 4-byte big-endian unsigned length followed by a
UTF-8 JSON object — the same JSON-compatible dictionaries the rest of the
runtime already produces through :mod:`repro.runtime.wire` and
:meth:`~repro.runtime.messages.Message.to_wire`, so facts, delegations,
derivation closures and grants ride the network without a second encoder.

Two consumption styles are provided:

* :func:`read_frame` — the asyncio path, awaiting exactly one frame from a
  :class:`~asyncio.StreamReader` (``None`` at clean EOF);
* :class:`FrameDecoder` — a sans-io incremental decoder (feed bytes, take
  complete frames) used by tests and by anything that wants to parse a
  captured byte stream without an event loop.

Frames larger than :data:`MAX_FRAME_BYTES` are rejected on both paths: the
limit bounds the memory an adversarial or corrupted peer can make us
allocate from a single length prefix.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, List, Optional

#: Upper bound on one frame's JSON body (4 MiB — a FactMessage carrying
#: hex-encoded picture bytes fits comfortably; a corrupt length prefix does
#: not get to allocate gigabytes).
MAX_FRAME_BYTES = 4 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FrameError(ValueError):
    """A malformed frame: oversized, truncated, or not a JSON object."""


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Encode one JSON-compatible dictionary as a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """Decode one frame body; raises :class:`FrameError` when malformed."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


async def read_frame(reader: "asyncio.StreamReader") -> Optional[Dict[str, Any]]:
    """Await one frame from ``reader``; ``None`` at clean end-of-stream.

    A stream that ends mid-frame (inside the length prefix or the body)
    raises :class:`FrameError` — the peer died mid-write and the bytes read
    so far are unusable.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("stream ended inside a frame length prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"incoming frame of {length} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("stream ended inside a frame body") from exc
    return decode_body(body)


async def write_frame(writer: "asyncio.StreamWriter",
                      payload: Dict[str, Any]) -> None:
    """Write one frame and drain the writer."""
    writer.write(encode_frame(payload))
    await writer.drain()


class FrameDecoder:
    """Incremental sans-io frame parser: ``feed`` bytes, collect frames.

    The decoder buffers partial input, so frames may arrive split across any
    byte boundary (as TCP is free to do)::

        decoder = FrameDecoder()
        frames = decoder.feed(chunk)        # zero or more complete frames
    """

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Add bytes to the buffer; return every frame completed by them."""
        self._buffer.extend(data)
        frames: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                break
            (length,) = _LENGTH.unpack(bytes(self._buffer[:_LENGTH.size]))
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"incoming frame of {length} bytes exceeds "
                    f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
                )
            if len(self._buffer) < _LENGTH.size + length:
                break
            body = bytes(self._buffer[_LENGTH.size:_LENGTH.size + length])
            del self._buffer[:_LENGTH.size + length]
            frames.append(decode_body(body))
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)
