"""SWIM-style membership: who is in the deployment, and are they alive.

The model follows the SWIM paper's split: a *dissemination* component
(membership assertions piggybacked on regular traffic, each retransmitted a
bounded number of times) and a *failure detection* component (periodic
ping / ping-req probing — driven by :class:`~repro.net.node.GossipNode` —
whose verdicts feed back in as assertions).  Each member carries an
**incarnation number**: only the member itself may increment it, which is
how a live peer refutes a false suspicion (``alive`` at a higher
incarnation overrides ``suspect`` at a lower one).

The state machine per member::

    alive --(probe timeout)--> suspect --(suspect_timeout)--> dead
      ^                           |
      +--(alive @ higher inc)-----+          leave  -> left (graceful)

Everything here is pure state + virtual time: ``now`` is always passed in,
so the table runs identically under the TCP transport (monotonic clock),
the simulator (virtual clock) and direct unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.frames import MemberUpdate

#: Member statuses, in increasing "deadness" (used for same-incarnation
#: precedence: a later status in this order overrides an earlier one).
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"
LEFT = "left"

_PRECEDENCE = {ALIVE: 0, SUSPECT: 1, DEAD: 2, LEFT: 2}


@dataclass
class SwimConfig:
    """Timing and fanout constants of the SWIM protocol.

    The defaults suit localhost TCP and the virtual-clock simulator alike
    (all values in seconds); see ``docs/net-protocol.md`` for the tuning
    rationale.
    """

    #: Period between liveness probes issued by each node.
    ping_interval: float = 0.2
    #: How long a direct probe waits for its ack before going indirect.
    ping_timeout: float = 0.15
    #: How many intermediaries a ping-req round asks to probe the target.
    ping_req_fanout: int = 2
    #: Extra wait for an indirect ack before declaring suspicion.
    ping_req_timeout: float = 0.3
    #: How long a suspect may linger before being declared dead.
    suspect_timeout: float = 1.0
    #: Maximum membership updates piggybacked on one frame.
    piggyback_limit: int = 16
    #: How many times each membership update is piggybacked before retiring.
    retransmit: int = 6


@dataclass
class Member:
    """The local view of one peer."""

    name: str
    address: str
    status: str
    incarnation: int
    changed_at: float

    def is_routable(self) -> bool:
        """``True`` while the member is a valid gossip/probe target."""
        return self.status in (ALIVE, SUSPECT) and bool(self.address)

    def as_update(self) -> MemberUpdate:
        return MemberUpdate(peer=self.name, status=self.status,
                            incarnation=self.incarnation, address=self.address)


class MembershipTable:
    """One node's membership view plus its dissemination queue."""

    def __init__(self, self_name: str, self_address: str,
                 config: Optional[SwimConfig] = None, now: float = 0.0):
        self.self_name = self_name
        self.config = config or SwimConfig()
        self.members: Dict[str, Member] = {
            self_name: Member(self_name, self_address, ALIVE, 0, now),
        }
        # [update, remaining retransmissions] — drained by piggyback().
        self._queue: List[List] = []

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    @property
    def incarnation(self) -> int:
        """This node's own incarnation number."""
        return self.members[self.self_name].incarnation

    @property
    def self_address(self) -> str:
        return self.members[self.self_name].address

    def member(self, name: str) -> Optional[Member]:
        return self.members.get(name)

    def address_of(self, name: str) -> Optional[str]:
        member = self.members.get(name)
        return member.address if member is not None and member.address else None

    def routable_peers(self) -> List[str]:
        """Peers this node may probe or gossip to (alive or suspect), sorted."""
        return sorted(
            name for name, member in self.members.items()
            if name != self.self_name and member.is_routable()
        )

    def alive_peers(self) -> List[str]:
        """Peers currently believed alive (excluding self), sorted."""
        return sorted(
            name for name, member in self.members.items()
            if name != self.self_name and member.status == ALIVE
        )

    def status_of(self, name: str) -> Optional[str]:
        member = self.members.get(name)
        return member.status if member is not None else None

    def knows(self, name: str) -> bool:
        """``True`` when ``name`` appears in the table with a routable state."""
        member = self.members.get(name)
        return member is not None and member.is_routable()

    # ------------------------------------------------------------------ #
    # assertions (local verdicts and piggybacked remote updates)
    # ------------------------------------------------------------------ #

    def apply(self, update: MemberUpdate, now: float) -> Optional[str]:
        """Merge one membership assertion; returns the transition or ``None``.

        The return value is the *new status* when the assertion changed this
        table (``"alive"``, ``"suspect"``, ``"dead"``, ``"left"``,
        ``"refuted"`` for a self-suspicion that was refuted), ``None`` when
        it was stale or redundant.  Accepted changes are queued for further
        piggybacked dissemination.
        """
        if update.peer == self.self_name:
            return self._apply_about_self(update)
        current = self.members.get(update.peer)
        if current is None:
            if update.status in (DEAD, LEFT):
                # Record tombstones for unknown peers too: a stale "alive"
                # arriving later must not resurrect them.
                self.members[update.peer] = Member(
                    update.peer, update.address, update.status,
                    update.incarnation, now)
                self._enqueue(update)
                return update.status
            self.members[update.peer] = Member(
                update.peer, update.address, update.status,
                update.incarnation, now)
            self._enqueue(update)
            return update.status
        if not self._supersedes(update, current):
            # Stale — but an address we lack is still worth learning.
            if update.address and not current.address:
                current.address = update.address
            return None
        current.status = update.status
        current.incarnation = update.incarnation
        current.changed_at = now
        if update.address:
            current.address = update.address
        self._enqueue(current.as_update())
        return update.status

    def _apply_about_self(self, update: MemberUpdate) -> Optional[str]:
        """Assertions about *this* node: refute suspicion/death by
        out-incarnating it (only the member itself may bump its number)."""
        me = self.members[self.self_name]
        if update.status in (SUSPECT, DEAD) and update.incarnation >= me.incarnation:
            me.incarnation = update.incarnation + 1
            self._enqueue(me.as_update())
            return "refuted"
        return None

    @staticmethod
    def _supersedes(update: MemberUpdate, current: Member) -> bool:
        if update.incarnation > current.incarnation:
            # A higher incarnation always wins — it is newer information
            # from the member itself (alive refutation or rejoin).
            return True
        if update.incarnation < current.incarnation:
            return False
        return _PRECEDENCE[update.status] > _PRECEDENCE[current.status]

    def suspect(self, name: str, now: float) -> Optional[str]:
        """Local failure-detector verdict: ``name`` missed its probes."""
        member = self.members.get(name)
        if member is None or member.status != ALIVE:
            return None
        return self.apply(MemberUpdate(name, SUSPECT, member.incarnation,
                                       member.address), now)

    def declare_dead(self, name: str, now: float) -> Optional[str]:
        """Local verdict: ``name``'s suspicion timed out."""
        member = self.members.get(name)
        if member is None or member.status in (DEAD, LEFT):
            return None
        return self.apply(MemberUpdate(name, DEAD, member.incarnation,
                                       member.address), now)

    def expire_suspects(self, now: float) -> List[str]:
        """Promote suspects older than ``suspect_timeout`` to dead."""
        expired = [
            name for name, member in self.members.items()
            if member.status == SUSPECT
            and now - member.changed_at >= self.config.suspect_timeout
        ]
        for name in expired:
            self.declare_dead(name, now)
        return expired

    def leave(self, now: float) -> MemberUpdate:
        """Mark this node as gracefully departed; returns the leave update."""
        me = self.members[self.self_name]
        me.incarnation += 1
        me.status = LEFT
        me.changed_at = now
        update = me.as_update()
        self._enqueue(update)
        return update

    # ------------------------------------------------------------------ #
    # dissemination
    # ------------------------------------------------------------------ #

    def _enqueue(self, update: MemberUpdate) -> None:
        # Replace any queued entry about the same peer: the new assertion
        # supersedes it, and stale retransmissions would only be rejected.
        self._queue = [entry for entry in self._queue
                       if entry[0].peer != update.peer]
        self._queue.append([update, self.config.retransmit])

    def piggyback(self, limit: Optional[int] = None) -> Tuple[MemberUpdate, ...]:
        """Updates to attach to an outgoing frame (decrements their budget)."""
        limit = self.config.piggyback_limit if limit is None else limit
        selected: List[MemberUpdate] = []
        for entry in self._queue[:limit]:
            selected.append(entry[0])
            entry[1] -= 1
        self._queue = [entry for entry in self._queue if entry[1] > 0]
        return tuple(selected)

    def full_view(self) -> Tuple[MemberUpdate, ...]:
        """Every member as an update (the welcome payload for joiners)."""
        return tuple(member.as_update()
                     for _, member in sorted(self.members.items()))

    def pending_updates(self) -> int:
        """Number of updates still awaiting dissemination."""
        return len(self._queue)
