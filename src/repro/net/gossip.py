"""Push-gossip dissemination state: envelope buffer, digests, anti-entropy.

Application messages travel as :class:`~repro.net.frames.EnvelopeFrame`
records flooded along random fanout edges.  Each node remembers the
envelope ids it has seen in a bounded :class:`GossipBuffer`; duplicates are
dropped on arrival, and the recent-id **digest** is what anti-entropy
exchanges compare: a node periodically offers its digest to one random
peer, which answers with the envelopes the offerer lacks and a ``pull`` for
the ones it lacks itself.  Together push (probabilistic, fast) and pull
(deterministic repair) deliver every envelope to its recipient without any
global routing table.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.frames import EnvelopeFrame

_envelope_counter = itertools.count(1)


@dataclass
class GossipConfig:
    """Fanout and buffer constants of the dissemination layer."""

    #: Random peers each envelope is pushed/forwarded to (the recipient,
    #: when its address is known, is always included on top).
    fanout: int = 3
    #: Forwarding stops once an envelope has travelled this many hops.
    max_hops: int = 8
    #: Seconds between anti-entropy digest offers.
    anti_entropy_interval: float = 0.4
    #: Envelope ids advertised per digest (most recent first).
    digest_window: int = 256
    #: Envelopes retained for anti-entropy replay before eviction.
    buffer_size: int = 4096


def next_envelope_id(origin: str) -> str:
    """A process-unique envelope identifier stamped with its origin."""
    return f"{origin}#{next(_envelope_counter)}"


class GossipBuffer:
    """Bounded store of the envelopes a node has seen, in arrival order."""

    def __init__(self, config: Optional[GossipConfig] = None):
        self.config = config or GossipConfig()
        self._seen: "OrderedDict[str, EnvelopeFrame]" = OrderedDict()

    def observe(self, envelope: EnvelopeFrame) -> bool:
        """Record an envelope; ``False`` when its id was already seen."""
        if envelope.envelope_id in self._seen:
            return False
        self._seen[envelope.envelope_id] = envelope
        while len(self._seen) > self.config.buffer_size:
            self._seen.popitem(last=False)
        return True

    def __contains__(self, envelope_id: str) -> bool:
        return envelope_id in self._seen

    def __len__(self) -> int:
        return len(self._seen)

    def digest(self) -> Tuple[str, ...]:
        """The most recent envelope ids (up to ``digest_window``)."""
        window = self.config.digest_window
        ids = list(self._seen.keys())
        return tuple(ids[-window:])

    def missing(self, offered: Iterable[str]) -> Tuple[str, ...]:
        """Of the offered ids, the ones this buffer has not seen."""
        return tuple(i for i in offered if i not in self._seen)

    def get(self, envelope_id: str) -> Optional[EnvelopeFrame]:
        return self._seen.get(envelope_id)

    def take(self, ids: Iterable[str]) -> List[EnvelopeFrame]:
        """The stored envelopes among ``ids`` (silently skipping evicted ones)."""
        found = []
        for envelope_id in ids:
            envelope = self._seen.get(envelope_id)
            if envelope is not None:
                found.append(envelope)
        return found

    def not_in(self, other_ids: Iterable[str]) -> List[EnvelopeFrame]:
        """Envelopes in this buffer that the other digest does not list.

        Only the digest window is compared — older envelopes are assumed
        disseminated (they had ``buffer_size`` arrivals' worth of chances).
        """
        other = set(other_ids)
        recent = self.digest()
        return [self._seen[i] for i in recent if i not in other]
