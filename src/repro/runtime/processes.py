"""Running each WebdamLog peer in its own OS process.

The paper's demo runs peers on different machines (two laptops and a cloud
host).  The reproduction's closest local equivalent — per the substitution
notes in DESIGN.md — is to run every peer as a separate OS process and to
serialise all inter-peer traffic, which exercises the same code path
(autonomous engines exchanging encoded facts and rules) without requiring a
real network.

:class:`ProcessNetwork` is the parent-side orchestrator: it spawns one
:func:`_peer_worker` process per peer, routes wire-encoded messages between
them, and exposes the same round-based API as
:class:`~repro.runtime.system.WebdamLogSystem` (``run_round``,
``run_until_quiescent``) so benchmarks can switch transports with a flag.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import TransportError
from repro.runtime.messages import Message, message_from_wire
from repro.runtime import wire


# --------------------------------------------------------------------------- #
# the worker process
# --------------------------------------------------------------------------- #

def _peer_worker(name: str, command_queue: multiprocessing.Queue,
                 response_queue: multiprocessing.Queue,
                 provenance: bool = False) -> None:
    """Entry point of a peer process: serve commands until told to stop."""
    # Imports happen inside the worker so that the module is importable even
    # in spawn-based start methods.
    from repro.runtime.peer import Peer

    # The pipe transport delivers exactly once, in order, so workers always
    # run reliable replication (regardless of REPRO_REPLICATION).
    peer = Peer(name, auto_accept_delegations=True, provenance=provenance,
                replication="reliable")
    while True:
        command = command_queue.get()
        op = command.get("op")
        try:
            if op == "stop":
                response_queue.put({"op": "stopped", "peer": name})
                return
            if op == "load_program":
                peer.load_program(command["text"])
                response_queue.put({"op": "ok", "peer": name})
            elif op == "add_rule":
                rule = peer.add_rule(command["text"])
                response_queue.put({"op": "ok", "peer": name, "rule_id": rule.rule_id})
            elif op == "insert_fact":
                peer.insert_fact(wire.decode_fact(command["fact"]))
                response_queue.put({"op": "ok", "peer": name})
            elif op == "deliver_and_run":
                for encoded in command.get("messages", []):
                    peer.deliver(message_from_wire(encoded))
                result, outgoing = peer.run_stage()
                response_queue.put({
                    "op": "stage_done",
                    "peer": name,
                    "outgoing": [m.to_wire() for m in outgoing],
                    "quiescent": result.is_quiescent()
                                 and not command.get("messages"),
                    "derived": result.derived_intensional,
                    "stage": result.stage,
                })
            elif op == "query":
                facts = peer.query(command["relation"], command.get("peer_name"))
                response_queue.put({
                    "op": "facts",
                    "peer": name,
                    "facts": [wire.encode_fact(f) for f in facts],
                })
            elif op == "counts":
                response_queue.put({"op": "counts", "peer": name,
                                    "counts": peer.counts()})
            elif op == "explain":
                explanation = peer.explain(wire.decode_fact(command["fact"]))
                response_queue.put({
                    "op": "explanation",
                    "peer": name,
                    "derived": explanation.derived,
                    "why": [[wire.encode_fact(f) for f in sorted(alt, key=str)]
                            for alt in explanation.why],
                    "lineage": [wire.encode_fact(f)
                                for f in sorted(explanation.lineage, key=str)],
                    "base_relations": sorted(explanation.base_relations),
                    "peers": sorted(explanation.peers),
                })
            else:
                response_queue.put({"op": "error", "peer": name,
                                    "error": f"unknown op {op!r}"})
        except Exception as exc:  # pragma: no cover - surfaced to the parent
            response_queue.put({"op": "error", "peer": name, "error": repr(exc)})


@dataclass
class _PeerHandle:
    """Parent-side handle to one peer process."""

    name: str
    process: multiprocessing.Process
    commands: multiprocessing.Queue
    responses: multiprocessing.Queue

    def request(self, command: Dict[str, Any]) -> Dict[str, Any]:
        """Send one command and wait for its response."""
        self.commands.put(command)
        response = self.responses.get(timeout=60)
        if response.get("op") == "error":
            raise TransportError(
                f"peer process {self.name} failed: {response.get('error')}"
            )
        return response


# --------------------------------------------------------------------------- #
# the orchestrator
# --------------------------------------------------------------------------- #

class ProcessNetwork:
    """Round-based orchestration of peers running as OS processes.

    Use as a context manager (or call :meth:`shutdown` explicitly) so that
    the worker processes are always terminated::

        with ProcessNetwork() as net:
            net.spawn_peer("alice", program_text)
            net.spawn_peer("bob")
            net.run_until_quiescent()
            facts = net.query("alice", "friends")
    """

    def __init__(self, provenance: bool = False):
        self._context = multiprocessing.get_context()
        self.provenance = provenance
        self._handles: Dict[str, _PeerHandle] = {}
        # recipient -> wire-encoded messages waiting for the next round
        self._mailboxes: Dict[str, List[Dict[str, Any]]] = {}
        self.rounds_executed = 0
        self.messages_routed = 0

    # -- lifecycle ------------------------------------------------------- #

    def __enter__(self) -> "ProcessNetwork":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def spawn_peer(self, name: str, program: Optional[str] = None) -> None:
        """Start a new peer process (optionally loading a program)."""
        if name in self._handles:
            raise ValueError(f"peer {name!r} already spawned")
        commands: multiprocessing.Queue = self._context.Queue()
        responses: multiprocessing.Queue = self._context.Queue()
        process = self._context.Process(
            target=_peer_worker,
            args=(name, commands, responses, self.provenance), daemon=True,
            name=f"webdamlog-peer-{name}",
        )
        process.start()
        handle = _PeerHandle(name=name, process=process, commands=commands,
                             responses=responses)
        self._handles[name] = handle
        self._mailboxes.setdefault(name, [])
        if program:
            handle.request({"op": "load_program", "text": program})

    def shutdown(self) -> None:
        """Stop every peer process."""
        for handle in self._handles.values():
            if handle.process.is_alive():
                try:
                    handle.request({"op": "stop"})
                except Exception:
                    pass
                handle.process.join(timeout=5)
                if handle.process.is_alive():  # pragma: no cover - defensive
                    handle.process.terminate()
        self._handles.clear()

    def peer_names(self) -> Tuple[str, ...]:
        """Names of the spawned peers, sorted."""
        return tuple(sorted(self._handles))

    # -- user actions ------------------------------------------------------ #

    def load_program(self, peer: str, text: str) -> None:
        """Load a program text at one peer."""
        self._handle(peer).request({"op": "load_program", "text": text})

    def add_rule(self, peer: str, text: str) -> None:
        """Add one rule at one peer."""
        self._handle(peer).request({"op": "add_rule", "text": text})

    def insert_fact(self, peer: str, fact) -> None:
        """Insert a fact at one peer."""
        self._handle(peer).request({"op": "insert_fact", "fact": wire.encode_fact(fact)})

    def query(self, peer: str, relation: str, peer_name: Optional[str] = None) -> List:
        """Query the facts of ``relation`` visible at ``peer``."""
        response = self._handle(peer).request({
            "op": "query", "relation": relation, "peer_name": peer_name,
        })
        return [wire.decode_fact(f) for f in response["facts"]]

    def counts(self, peer: str) -> Dict[str, int]:
        """Counters of one peer."""
        return self._handle(peer).request({"op": "counts"})["counts"]

    def explain(self, peer: str, fact) -> Dict[str, Any]:
        """Why/lineage story of ``fact`` as recorded in ``peer``'s process.

        Returns a decoded dictionary (``derived``, ``why``, ``lineage``,
        ``base_relations``, ``peers``); requires the network to have been
        built with ``provenance=True``.
        """
        response = self._handle(peer).request({
            "op": "explain", "fact": wire.encode_fact(fact),
        })
        return {
            "derived": response["derived"],
            "why": [frozenset(wire.decode_fact(f) for f in alt)
                    for alt in response["why"]],
            "lineage": frozenset(wire.decode_fact(f) for f in response["lineage"]),
            "base_relations": frozenset(response["base_relations"]),
            "peers": frozenset(response["peers"]),
        }

    # -- execution --------------------------------------------------------- #

    def run_round(self) -> Dict[str, bool]:
        """Run one round across every peer process; returns per-peer quiescence."""
        self.rounds_executed += 1
        quiescence: Dict[str, bool] = {}
        produced: Dict[str, List[Dict[str, Any]]] = {name: [] for name in self._handles}
        for name in sorted(self._handles):
            handle = self._handles[name]
            inbox = self._mailboxes.get(name, [])
            self._mailboxes[name] = []
            response = handle.request({"op": "deliver_and_run", "messages": inbox})
            quiescence[name] = bool(response.get("quiescent"))
            for encoded in response.get("outgoing", []):
                produced[name].append(encoded)
        for sender, messages in produced.items():
            for encoded in messages:
                recipient = encoded.get("recipient")
                if recipient in self._mailboxes:
                    self._mailboxes[recipient].append(encoded)
                    self.messages_routed += 1
                # Messages to unknown peers are dropped, mirroring the
                # in-memory network's behaviour for wrapper pseudo-peers.
        return quiescence

    def run_until_quiescent(self, max_rounds: int = 50) -> int:
        """Run rounds until every peer is quiescent and no mail is waiting."""
        for round_index in range(1, max_rounds + 1):
            quiescence = self.run_round()
            mailboxes_empty = all(not waiting for waiting in self._mailboxes.values())
            if all(quiescence.values()) and mailboxes_empty:
                return round_index
        return max_rounds

    def converge(self, max_steps: Optional[int] = None) -> int:
        """Scheduler-API name for :meth:`run_until_quiescent`.

        The process backend has no pluggable scheduler (each worker process
        is its own driver), but exposes the same ``converge`` verb as
        :class:`~repro.runtime.system.WebdamLogSystem` so callers can switch
        backends without changing their driving code.
        """
        return self.run_until_quiescent(max_rounds=50 if max_steps is None else max_steps)

    # -- internals --------------------------------------------------------- #

    def _handle(self, peer: str) -> _PeerHandle:
        try:
            return self._handles[peer]
        except KeyError as exc:
            raise KeyError(f"unknown peer {peer!r}") from exc
