"""The system orchestrator: a network of WebdamLog peers plus a scheduler.

The orchestrator owns the topology (peers, trust defaults, the transport)
and exposes the **primitives** an execution driver composes:

* :meth:`WebdamLogSystem.begin_round` / :meth:`finish_round` bracket one
  scheduling cycle (the transport clock advances at ``finish_round``);
* :meth:`WebdamLogSystem.activate_peer` runs one peer's stage — deliver the
  due messages, run one computation stage, hand the outgoing messages to the
  transport — and notifies the stage observers with the stage's deltas.

*Which* peers are activated, and when, is the scheduler's decision: the
default :class:`~repro.runtime.scheduler.LockstepScheduler` reproduces the
historical global rounds, while the reactive and async drivers activate only
peers with pending work (see :mod:`repro.runtime.scheduler`).  Drive the
system with :meth:`converge` / :meth:`step` (or ``await`` :meth:`aconverge`);
the historical ``run_round`` / ``run_rounds`` / ``run_until_quiescent``
methods remain as deprecated lockstep shims.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.acl.trust import TrustStore
from repro.core.errors import TransportError
from repro.core.facts import Fact
from repro.core.schema import SchemaRegistry
from repro.runtime.inmemory import InMemoryTransport, NetworkStats
from repro.runtime.messages import PeerJoinMessage
from repro.runtime.peer import Peer, PeerStageReport
from repro.runtime.scheduler import (
    AsyncScheduler,
    LockstepScheduler,
    RoundReport,
    RunSummary,
    Scheduler,
    resolve_scheduler,
)

if TYPE_CHECKING:
    from repro.runtime.transport import Transport

__all__ = ["WebdamLogSystem", "RoundReport", "RunSummary"]


class WebdamLogSystem:
    """A set of peers connected by a transport and driven by a scheduler.

    The orchestrator depends only on the
    :class:`~repro.runtime.transport.Transport` protocol; pass any conforming
    ``transport`` to swap the backend.  When none is given a deterministic
    :class:`~repro.runtime.inmemory.InMemoryTransport` is built from the
    ``latency`` / ``drop_probability`` / ``seed`` parameters (the historical
    constructor signature, kept for compatibility).

    Parameters
    ----------
    latency:
        Delivery latency of the default in-memory transport, in rounds.
    drop_probability / seed:
        Loss model of the default transport (for failure-injection tests).
    default_trusted:
        Peers that every newly added peer trusts by default.  The demo
        configuration trusts only the ``sigmod`` peer; pass
        ``default_trusted=("sigmod",)`` to reproduce it.
    auto_accept_delegations:
        When ``True`` (default) peers install any incoming delegation
        immediately; set to ``False`` to enable the pending-queue control of
        delegation for untrusted delegators.
    transport:
        An explicit :class:`~repro.runtime.transport.Transport`.  When given,
        ``latency``/``drop_probability``/``seed`` are ignored.
    scheduler:
        The execution driver: a :class:`~repro.runtime.scheduler.Scheduler`
        instance or one of the names ``"lockstep"`` (default), ``"reactive"``,
        ``"async"``.
    evaluation_mode:
        The per-peer fixpoint strategy: ``"incremental"`` (default — the
        seminaive, index-accelerated engine) or ``"naive"`` (the historical
        clear-and-recompute, kept as the differential baseline).
    provenance:
        When ``True`` every peer gets a
        :class:`~repro.provenance.graph.ProvenanceTracker` whose graph is
        incrementally maintained by the engine; fact updates then ship their
        derivations, so why/lineage queries (``peer.explain(fact)``) and
        lineage-based access control work across peer boundaries.
    """

    def __init__(self, latency: int = 1, drop_probability: float = 0.0,
                 seed: Optional[int] = 0,
                 default_trusted: Sequence[str] = (),
                 auto_accept_delegations: bool = True,
                 strict_stage_inputs: bool = False,
                 transport: Optional["Transport"] = None,
                 scheduler: Union[None, str, Scheduler] = None,
                 evaluation_mode: str = "incremental",
                 provenance: bool = False,
                 storage=None, storage_options: Optional[Dict] = None,
                 planner: Optional[str] = None,
                 replication: Optional[str] = None):
        self.transport = transport if transport is not None else InMemoryTransport(
            latency=latency, drop_probability=drop_probability, seed=seed,
        )
        self.scheduler: Scheduler = resolve_scheduler(scheduler)
        self.peers: Dict[str, Peer] = {}
        self.default_trusted = tuple(default_trusted)
        self.auto_accept_delegations = auto_accept_delegations
        self.strict_stage_inputs = strict_stage_inputs
        self.evaluation_mode = evaluation_mode
        self.provenance = provenance
        # Storage backend specification applied to every peer ("memory",
        # "sqlite", or None to consult REPRO_STORE_BACKEND); each peer
        # resolves its own backend instance (one database file per peer).
        self.storage = storage
        self.storage_options = dict(storage_options or {})
        # Planner mode applied to every peer ("off", "order", "magic", or
        # None to consult REPRO_PLANNER / the default).
        self.planner = planner
        # Replication mode applied to every peer ("reliable", "causal", or
        # None to consult REPRO_REPLICATION / the default).  Mixed-mode
        # deployments are not supported: a reliable peer rejects replication
        # envelopes, so the mode is a system-level choice.
        self.replication = replication
        self._round = 0
        self.history: List[RoundReport] = []
        self._round_observers: List[Callable[[RoundReport], None]] = []
        self._stage_observers: List[Callable[[str, PeerStageReport], None]] = []

    @property
    def network(self) -> "Transport":
        """Deprecated alias of :attr:`transport` (pre-protocol name)."""
        return self.transport

    # ------------------------------------------------------------------ #
    # observers
    # ------------------------------------------------------------------ #

    def add_round_observer(self, observer: Callable[[RoundReport], None]) -> None:
        """Call ``observer(report)`` after every scheduling cycle."""
        self._round_observers.append(observer)

    def remove_round_observer(self, observer: Callable[[RoundReport], None]) -> None:
        """Stop calling a previously added observer (no-op when unknown)."""
        try:
            self._round_observers.remove(observer)
        except ValueError:
            pass

    def add_stage_observer(self, observer: Callable[[str, PeerStageReport], None]) -> None:
        """Call ``observer(peer_name, report)`` after every executed peer stage.

        This is the hook the :mod:`repro.api` subscription machinery uses:
        each report carries the stage's
        :attr:`~repro.core.engine.StageResult.visible_delta`, so observers
        see derivations as stages complete — no relation re-scanning, no
        waiting for a round boundary.
        """
        self._stage_observers.append(observer)

    def remove_stage_observer(self, observer: Callable[[str, PeerStageReport], None]) -> None:
        """Stop calling a previously added stage observer (no-op when unknown)."""
        try:
            self._stage_observers.remove(observer)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # topology management
    # ------------------------------------------------------------------ #

    def add_peer(self, name: str, program: Optional[str] = None,
                 trusted: Sequence[str] = (), trust_all: bool = False,
                 auto_accept_delegations: Optional[bool] = None,
                 announce: bool = False,
                 schemas: Optional[SchemaRegistry] = None,
                 provenance: Optional[bool] = None) -> Peer:
        """Create and register a new peer.

        ``program`` is an optional WebdamLog program text loaded immediately.
        ``announce=True`` sends a :class:`PeerJoinMessage` to every existing
        peer (the "Interaction via the Web" scenario, where audience members
        launch their own peers).
        """
        if name in self.peers:
            raise ValueError(f"peer {name!r} already exists")
        trust = TrustStore(name, trusted=tuple(trusted) + self.default_trusted,
                           trust_all=trust_all)
        auto = (self.auto_accept_delegations if auto_accept_delegations is None
                else auto_accept_delegations)
        peer = Peer(name, trust=trust, auto_accept_delegations=auto,
                    strict_stage_inputs=self.strict_stage_inputs, schemas=schemas,
                    evaluation_mode=self.evaluation_mode,
                    provenance=self.provenance if provenance is None else provenance,
                    storage=self.storage,
                    storage_options=dict(self.storage_options),
                    planner=self.planner,
                    replication=self.replication)
        if peer.replication is not None:
            # Causal joins/digests/pulls land in the same event stream as the
            # transport's send/drop/dup records, so one JSONL replays it all.
            peer.replication.event_log = getattr(self.transport, "event_log", None)
        self.peers[name] = peer
        self.transport.register(name)
        if program:
            peer.load_program(program)
        if announce:
            for other in self.peers.values():
                if other.name != name:
                    self.transport.send(PeerJoinMessage(
                        sender=name, recipient=other.name,
                        peer_name=name, address=name,
                    ))
        return peer

    def remove_peer(self, name: str) -> Optional[Peer]:
        """Remove a peer from the system (its undelivered messages are dropped)."""
        peer = self.peers.pop(name, None)
        if peer is not None:
            self.transport.unregister(name)
            for other in self.peers.values():
                # Causal-mode peers would otherwise retransmit to the dead
                # peer forever (its channel can never be acknowledged).
                other.drop_replication_channel(name)
        return peer

    def close(self) -> None:
        """Commit and release every peer's storage backend.

        Durable (SQLite) peers can later be rebuilt over the same storage
        path and will restore their facts, rules and installed delegations.
        """
        for peer in self.peers.values():
            peer.close()

    def peer(self, name: str) -> Peer:
        """Look up a peer by name."""
        try:
            return self.peers[name]
        except KeyError as exc:
            raise KeyError(f"unknown peer {name!r}") from exc

    def peer_names(self) -> Tuple[str, ...]:
        """Sorted names of the registered peers."""
        return tuple(sorted(self.peers))

    def __contains__(self, name: str) -> bool:
        return name in self.peers

    def __len__(self) -> int:
        return len(self.peers)

    # ------------------------------------------------------------------ #
    # scheduling primitives (composed by the drivers in runtime.scheduler)
    # ------------------------------------------------------------------ #

    @property
    def current_round(self) -> int:
        """Number of scheduling cycles executed so far."""
        return self._round

    def begin_round(self) -> RoundReport:
        """Open a new scheduling cycle and return its (empty) report."""
        self._round += 1
        return RoundReport(round_number=self._round)

    def activate_peer(self, name: str,
                      report: Optional[RoundReport] = None) -> PeerStageReport:
        """Run one stage at ``name``: deliver due messages, compute, send.

        The resulting :class:`~repro.runtime.peer.PeerStageReport` is folded
        into ``report`` (when given) and pushed to the stage observers.
        """
        peer = self.peers[name]
        incoming = self.transport.receive(name)
        delivered = peer.deliver_all(incoming)
        stage_result, outgoing = peer.run_stage()
        sent = 0
        for message in outgoing:
            try:
                if self.transport.send(message):
                    sent += 1
            except TransportError:
                # Destination unknown to the network (e.g. a wrapper-only
                # pseudo-peer): the message is counted but not delivered.
                # Causal peers mark the channel unreachable so the never-
                # acknowledgeable ops stop demanding anti-entropy attention.
                peer.notify_send_failed(message)
        stage_report = PeerStageReport(
            peer=name,
            stage_result=stage_result,
            delivered_messages=delivered,
            sent_messages=sent,
            pending_delegations=len(peer.pending_delegations()),
        )
        if report is not None:
            report.peer_reports[name] = stage_report
            report.messages_sent += sent
            report.messages_delivered += delivered
        for observer in tuple(self._stage_observers):
            observer(name, stage_report)
        return stage_report

    def finish_round(self, report: RoundReport) -> RoundReport:
        """Close a scheduling cycle: advance the transport clock, notify observers."""
        self.transport.advance_round()
        self.history.append(report)
        for observer in tuple(self._round_observers):
            observer(report)
        return report

    def due_message_count(self, name: str) -> int:
        """Messages deliverable to ``name`` at the current transport round.

        Transports that track latency expose an exact ``due_count``; for any
        other implementation the (conservative) total pending count is used,
        which may activate a peer early but never starves one.
        """
        due = getattr(self.transport, "due_count", None)
        if due is not None:
            return due(name)
        return self.transport.pending_count(name)

    def pending_engine_input(self) -> bool:
        """``True`` while any engine holds unconsumed input."""
        return any(peer.engine.has_pending_input() for peer in self.peers.values())

    def replication_attention(self) -> bool:
        """``True`` while any causal channel still has anti-entropy work.

        An adversarial transport can drop a digest, leaving nothing in
        flight while an outbox is still unacknowledged; the in-flight check
        alone would then let ``converge()`` settle during the digest backoff
        window with the loss unrepaired.  Folding this into
        :func:`repro.runtime.scheduler.settled` is what makes the state
        module's contract hold: a causal system refuses to settle while any
        channel has unacknowledged ops.
        """
        return any(peer.replication is not None
                   and peer.replication.needs_attention()
                   for peer in self.peers.values())

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def converge(self, max_steps: Optional[int] = None, extra_rounds: int = 0,
                 scheduler: Union[None, str, Scheduler] = None,
                 quiet_period: Optional[int] = None) -> RunSummary:
        """Drive the system to a fixpoint with the configured scheduler.

        Convergence means: a cycle in which every executed stage was
        quiescent, no message remains in flight, and no engine holds pending
        input — sustained for the transport's quiet period.  In-memory
        transports settle in one quiet cycle; networked transports (whose
        in-flight frames are invisible) advertise a
        ``convergence_quiet_period`` and convergence requires that many
        consecutive quiet cycles (override per call with ``quiet_period``).
        ``max_steps`` bounds the scheduling cycles (default 100);
        ``extra_rounds`` additional cycles are run afterwards (useful when a
        test wants to check stability).  Pass ``scheduler`` to override the
        configured driver for this call only.
        """
        driver = self.scheduler if scheduler is None else resolve_scheduler(scheduler)
        return driver.converge(self, max_steps=max_steps, extra_rounds=extra_rounds,
                               quiet_period=quiet_period)

    def step(self) -> RoundReport:
        """Execute one scheduling cycle of the configured scheduler."""
        return self.scheduler.step(self)

    async def aconverge(self, max_steps: Optional[int] = None,
                        extra_rounds: int = 0,
                        quiet_period: Optional[int] = None) -> RunSummary:
        """Asynchronously drive the system to a fixpoint.

        Uses the configured scheduler when it is an
        :class:`~repro.runtime.scheduler.AsyncScheduler`, otherwise a fresh
        one — so ``await system.aconverge()`` works regardless of how the
        system was built.  ``quiet_period`` has the same bounded-quiet-period
        semantics as :meth:`converge`.
        """
        driver = (self.scheduler if isinstance(self.scheduler, AsyncScheduler)
                  else AsyncScheduler())
        return await driver.aconverge(self, max_steps=max_steps,
                                      extra_rounds=extra_rounds,
                                      quiet_period=quiet_period)

    # ------------------------------------------------------------------ #
    # deprecated round-based shims (pre-scheduler API)
    # ------------------------------------------------------------------ #

    def run_round(self) -> RoundReport:
        """Deprecated: execute one lockstep round (every peer runs one stage).

        .. deprecated::
           Use :meth:`step` (with the scheduler of your choice) or
           :meth:`converge`.
        """
        warnings.warn(
            "WebdamLogSystem.run_round() is deprecated; use step() or "
            "converge() with a scheduler (see repro.runtime.scheduler)",
            DeprecationWarning, stacklevel=2,
        )
        return LockstepScheduler().step(self)

    def run_rounds(self, count: int) -> List[RoundReport]:
        """Deprecated: execute ``count`` lockstep rounds unconditionally.

        .. deprecated::
           Use :meth:`step` (with the scheduler of your choice) or
           :meth:`converge`.
        """
        warnings.warn(
            "WebdamLogSystem.run_rounds() is deprecated; use step() or "
            "converge() with a scheduler (see repro.runtime.scheduler)",
            DeprecationWarning, stacklevel=2,
        )
        driver = LockstepScheduler()
        return [driver.step(self) for _ in range(count)]

    def run_until_quiescent(self, max_rounds: int = 100,
                            extra_rounds: int = 0) -> RunSummary:
        """Deprecated: run lockstep rounds until the whole system converges.

        .. deprecated::
           Use :meth:`converge` (equivalent under the default lockstep
           scheduler, and scheduler-aware otherwise).
        """
        warnings.warn(
            "WebdamLogSystem.run_until_quiescent() is deprecated; use "
            "converge() (see repro.runtime.scheduler)",
            DeprecationWarning, stacklevel=2,
        )
        return LockstepScheduler().converge(self, max_steps=max_rounds,
                                            extra_rounds=extra_rounds)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def network_stats(self) -> NetworkStats:
        """The network's accumulated statistics."""
        return self.transport.stats

    def totals(self) -> Dict[str, int]:
        """System-wide counters: rounds, messages, facts, delegations."""
        totals = {
            "rounds": self._round,
            "messages_sent": self.transport.stats.messages_sent,
            "messages_delivered": self.transport.stats.messages_delivered,
            "payload_items": self.transport.stats.payload_items,
            "peers": len(self.peers),
        }
        totals["extensional_facts"] = sum(
            peer.engine.state.store.total_facts() for peer in self.peers.values()
        )
        totals["derived_facts"] = sum(
            peer.engine.state.derived.total_facts() for peer in self.peers.values()
        )
        totals["installed_delegations"] = sum(
            len(peer.engine.state.delegations_in) for peer in self.peers.values()
        )
        totals["pending_delegations"] = sum(
            len(peer.pending_delegations()) for peer in self.peers.values()
        )
        totals["substitutions_explored"] = sum(
            peer.engine.eval_counters["substitutions_explored"]
            for peer in self.peers.values()
        )
        totals["fixpoint_iterations"] = sum(
            peer.engine.eval_counters["fixpoint_iterations"]
            for peer in self.peers.values()
        )
        return totals

    def snapshot(self) -> Dict[str, Dict[str, Tuple[Fact, ...]]]:
        """Per-peer snapshot of every visible relation."""
        return {name: peer.engine.snapshot() for name, peer in sorted(self.peers.items())}
