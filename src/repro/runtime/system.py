"""The system orchestrator: a network of WebdamLog peers driven round by round.

A **round** of the system consists of, for every peer in a deterministic
order:

1. deliver the messages addressed to the peer that are due this round,
2. run one computation stage of the peer's engine,
3. hand the stage's outgoing messages to the network (they become visible
   ``latency`` rounds later).

The orchestrator detects **convergence** (every peer quiescent and no message
in flight) and accumulates the round/message accounting that the benchmark
harness reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.acl.trust import TrustStore
from repro.core.errors import TransportError
from repro.core.facts import Fact
from repro.core.schema import SchemaRegistry
from repro.runtime.inmemory import InMemoryTransport, NetworkStats
from repro.runtime.messages import Message, PeerJoinMessage
from repro.runtime.peer import Peer, PeerStageReport

if TYPE_CHECKING:
    from repro.runtime.transport import Transport


@dataclass
class RoundReport:
    """What happened during one system round."""

    round_number: int
    peer_reports: Dict[str, PeerStageReport] = field(default_factory=dict)
    messages_sent: int = 0
    messages_delivered: int = 0

    def is_quiescent(self) -> bool:
        """``True`` when every peer was quiescent this round."""
        return all(report.is_quiescent() for report in self.peer_reports.values())

    def total_derived(self) -> int:
        """Total intensional facts derived across peers this round."""
        return sum(r.stage_result.derived_intensional for r in self.peer_reports.values())

    def total_delegations_installed(self) -> int:
        """Total delegation-install messages emitted this round."""
        return sum(len(r.stage_result.delegations_to_install)
                   for r in self.peer_reports.values())


@dataclass
class RunSummary:
    """Summary of a :meth:`WebdamLogSystem.run_until_quiescent` execution."""

    rounds: List[RoundReport] = field(default_factory=list)
    converged: bool = False

    @property
    def round_count(self) -> int:
        """Number of rounds executed."""
        return len(self.rounds)

    @property
    def rounds_to_convergence(self) -> int:
        """Number of rounds in which real work happened (delivery or derivation).

        This is the index (1-based) of the last non-quiescent round; trailing
        quiescent rounds needed only to *detect* convergence are not counted.
        """
        last_active = 0
        for index, report in enumerate(self.rounds, start=1):
            if not report.is_quiescent():
                last_active = index
        return last_active

    def total_messages(self) -> int:
        """Total messages sent across all rounds."""
        return sum(report.messages_sent for report in self.rounds)

    def total_derived(self) -> int:
        """Total intensional derivations across all rounds and peers."""
        return sum(report.total_derived() for report in self.rounds)


class WebdamLogSystem:
    """A set of peers connected by a round-based transport.

    The orchestrator depends only on the
    :class:`~repro.runtime.transport.Transport` protocol; pass any conforming
    ``transport`` to swap the backend.  When none is given a deterministic
    :class:`~repro.runtime.inmemory.InMemoryTransport` is built from the
    ``latency`` / ``drop_probability`` / ``seed`` parameters (the historical
    constructor signature, kept for compatibility).

    Parameters
    ----------
    latency:
        Delivery latency of the default in-memory transport, in rounds.
    drop_probability / seed:
        Loss model of the default transport (for failure-injection tests).
    default_trusted:
        Peers that every newly added peer trusts by default.  The demo
        configuration trusts only the ``sigmod`` peer; pass
        ``default_trusted=("sigmod",)`` to reproduce it.
    auto_accept_delegations:
        When ``True`` (default) peers install any incoming delegation
        immediately; set to ``False`` to enable the pending-queue control of
        delegation for untrusted delegators.
    transport:
        An explicit :class:`~repro.runtime.transport.Transport`.  When given,
        ``latency``/``drop_probability``/``seed`` are ignored.
    """

    def __init__(self, latency: int = 1, drop_probability: float = 0.0,
                 seed: Optional[int] = 0,
                 default_trusted: Sequence[str] = (),
                 auto_accept_delegations: bool = True,
                 strict_stage_inputs: bool = False,
                 transport: Optional["Transport"] = None):
        self.transport = transport if transport is not None else InMemoryTransport(
            latency=latency, drop_probability=drop_probability, seed=seed,
        )
        self.peers: Dict[str, Peer] = {}
        self.default_trusted = tuple(default_trusted)
        self.auto_accept_delegations = auto_accept_delegations
        self.strict_stage_inputs = strict_stage_inputs
        self._round = 0
        self.history: List[RoundReport] = []
        self._round_observers: List[Callable[[RoundReport], None]] = []

    @property
    def network(self) -> "Transport":
        """Deprecated alias of :attr:`transport` (pre-protocol name)."""
        return self.transport

    def add_round_observer(self, observer: Callable[[RoundReport], None]) -> None:
        """Call ``observer(report)`` after every executed round.

        This is the hook the :mod:`repro.api` subscription machinery uses to
        watch derivations without reaching into engine state.
        """
        self._round_observers.append(observer)

    def remove_round_observer(self, observer: Callable[[RoundReport], None]) -> None:
        """Stop calling a previously added observer (no-op when unknown)."""
        try:
            self._round_observers.remove(observer)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # topology management
    # ------------------------------------------------------------------ #

    def add_peer(self, name: str, program: Optional[str] = None,
                 trusted: Sequence[str] = (), trust_all: bool = False,
                 auto_accept_delegations: Optional[bool] = None,
                 announce: bool = False,
                 schemas: Optional[SchemaRegistry] = None) -> Peer:
        """Create and register a new peer.

        ``program`` is an optional WebdamLog program text loaded immediately.
        ``announce=True`` sends a :class:`PeerJoinMessage` to every existing
        peer (the "Interaction via the Web" scenario, where audience members
        launch their own peers).
        """
        if name in self.peers:
            raise ValueError(f"peer {name!r} already exists")
        trust = TrustStore(name, trusted=tuple(trusted) + self.default_trusted,
                           trust_all=trust_all)
        auto = (self.auto_accept_delegations if auto_accept_delegations is None
                else auto_accept_delegations)
        peer = Peer(name, trust=trust, auto_accept_delegations=auto,
                    strict_stage_inputs=self.strict_stage_inputs, schemas=schemas)
        self.peers[name] = peer
        self.transport.register(name)
        if program:
            peer.load_program(program)
        if announce:
            for other in self.peers.values():
                if other.name != name:
                    self.transport.send(PeerJoinMessage(
                        sender=name, recipient=other.name,
                        peer_name=name, address=name,
                    ))
        return peer

    def remove_peer(self, name: str) -> Optional[Peer]:
        """Remove a peer from the system (its undelivered messages are dropped)."""
        peer = self.peers.pop(name, None)
        if peer is not None:
            self.transport.unregister(name)
        return peer

    def peer(self, name: str) -> Peer:
        """Look up a peer by name."""
        try:
            return self.peers[name]
        except KeyError as exc:
            raise KeyError(f"unknown peer {name!r}") from exc

    def peer_names(self) -> Tuple[str, ...]:
        """Sorted names of the registered peers."""
        return tuple(sorted(self.peers))

    def __contains__(self, name: str) -> bool:
        return name in self.peers

    def __len__(self) -> int:
        return len(self.peers)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    @property
    def current_round(self) -> int:
        """Number of rounds executed so far."""
        return self._round

    def run_round(self) -> RoundReport:
        """Execute one round: every peer consumes its messages and runs one stage."""
        self._round += 1
        report = RoundReport(round_number=self._round)
        for name in sorted(self.peers):
            peer = self.peers[name]
            incoming = self.transport.receive(name)
            delivered = peer.deliver_all(incoming)
            stage_result, outgoing = peer.run_stage()
            sent = 0
            for message in outgoing:
                try:
                    if self.transport.send(message):
                        sent += 1
                except TransportError:
                    # Destination unknown to the network (e.g. a wrapper-only
                    # pseudo-peer): the message is counted but not delivered.
                    pass
            report.peer_reports[name] = PeerStageReport(
                peer=name,
                stage_result=stage_result,
                delivered_messages=delivered,
                sent_messages=sent,
                pending_delegations=len(peer.pending_delegations()),
            )
            report.messages_sent += sent
            report.messages_delivered += delivered
        self.transport.advance_round()
        self.history.append(report)
        for observer in tuple(self._round_observers):
            observer(report)
        return report

    def run_rounds(self, count: int) -> List[RoundReport]:
        """Execute ``count`` rounds unconditionally."""
        return [self.run_round() for _ in range(count)]

    def run_until_quiescent(self, max_rounds: int = 100,
                            extra_rounds: int = 0) -> RunSummary:
        """Run rounds until the whole system converges (or ``max_rounds`` is hit).

        Convergence means: a round in which every peer was quiescent *and* no
        message remains in flight.  ``extra_rounds`` additional rounds are run
        afterwards (useful when a test wants to check stability).
        """
        summary = RunSummary()
        for _ in range(max_rounds):
            report = self.run_round()
            summary.rounds.append(report)
            if report.is_quiescent() and not self.transport.has_in_flight() \
                    and not self._any_pending_engine_input():
                summary.converged = True
                break
        for _ in range(extra_rounds):
            summary.rounds.append(self.run_round())
        return summary

    def _any_pending_engine_input(self) -> bool:
        return any(peer.engine.has_pending_input() for peer in self.peers.values())

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def network_stats(self) -> NetworkStats:
        """The network's accumulated statistics."""
        return self.transport.stats

    def totals(self) -> Dict[str, int]:
        """System-wide counters: rounds, messages, facts, delegations."""
        totals = {
            "rounds": self._round,
            "messages_sent": self.transport.stats.messages_sent,
            "messages_delivered": self.transport.stats.messages_delivered,
            "payload_items": self.transport.stats.payload_items,
            "peers": len(self.peers),
        }
        totals["extensional_facts"] = sum(
            peer.engine.state.store.total_facts() for peer in self.peers.values()
        )
        totals["derived_facts"] = sum(
            peer.engine.state.derived.total_facts() for peer in self.peers.values()
        )
        totals["installed_delegations"] = sum(
            len(peer.engine.state.delegations_in) for peer in self.peers.values()
        )
        totals["pending_delegations"] = sum(
            len(peer.pending_delegations()) for peer in self.peers.values()
        )
        return totals

    def snapshot(self) -> Dict[str, Dict[str, Tuple[Fact, ...]]]:
        """Per-peer snapshot of every visible relation."""
        return {name: peer.engine.snapshot() for name, peer in sorted(self.peers.items())}
