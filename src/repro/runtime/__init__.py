"""The distributed runtime: transports, peers and the system orchestrator.

The paper's demonstration runs three peers — two laptops and a cloud-hosted
``sigmod`` peer — exchanging facts and delegations over a network.  This
package reproduces that setting behind the
:class:`~repro.runtime.transport.Transport` protocol (deliver / collect /
stats), with interchangeable implementations:

* :class:`~repro.runtime.inmemory.InMemoryTransport` — a deterministic
  simulated network (per-round delivery, configurable latency and loss) that
  makes rounds and message counts measurable, used by the benchmarks
  (``InMemoryNetwork`` is its deprecated historical name);
* :class:`~repro.runtime.transport.RecordingTransport` — a decorator that
  logs every send/deliver event of an inner transport;
* :class:`~repro.runtime.processes.ProcessNetwork` — each peer runs in its own
  OS process (the "simulate peers as processes locally" substitution), with
  messages serialised over pipes.

:class:`~repro.runtime.peer.Peer` wraps a :class:`~repro.core.engine.WebdamLogEngine`
together with its delegation controller and wrappers;
:class:`~repro.runtime.system.WebdamLogSystem` builds and drives a whole
network of peers.
"""

from repro.runtime.messages import (
    FactMessage,
    DelegationInstallMessage,
    DelegationRetractMessage,
    PeerJoinMessage,
    Message,
)
from repro.runtime.inmemory import InMemoryNetwork, InMemoryTransport, NetworkStats
from repro.runtime.transport import RecordingTransport, Transport, TransportEvent
from repro.runtime.peer import Peer
from repro.runtime.scheduler import (
    AsyncScheduler,
    LockstepScheduler,
    ReactiveScheduler,
    RoundReport,
    RunSummary,
    Scheduler,
    resolve_scheduler,
)
from repro.runtime.system import WebdamLogSystem

__all__ = [
    "Message",
    "FactMessage",
    "DelegationInstallMessage",
    "DelegationRetractMessage",
    "PeerJoinMessage",
    "InMemoryNetwork",
    "InMemoryTransport",
    "NetworkStats",
    "RecordingTransport",
    "Transport",
    "TransportEvent",
    "Peer",
    "Scheduler",
    "LockstepScheduler",
    "ReactiveScheduler",
    "AsyncScheduler",
    "RoundReport",
    "RunSummary",
    "resolve_scheduler",
    "WebdamLogSystem",
]
