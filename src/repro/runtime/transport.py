"""The transport seam of the runtime.

:class:`Transport` is the structural protocol that
:class:`~repro.runtime.system.WebdamLogSystem` (and anything else that moves
:class:`~repro.runtime.messages.Message` objects between peers) programs
against.  It captures the three responsibilities of a round-based transport:

* **deliver** — accept messages addressed to registered peers (:meth:`send` /
  :meth:`send_all`), honouring whatever latency or loss model the
  implementation provides;
* **collect** — hand a peer the messages due to it at the current round
  (:meth:`receive`), with :meth:`advance_round` marking round boundaries;
* **stats** — expose the accounting (:class:`NetworkStats`) that benchmarks
  and tests read.

:class:`~repro.runtime.inmemory.InMemoryTransport` is the deterministic
reference implementation; :class:`RecordingTransport` decorates any transport
with a structured event log (useful for debugging, tests and replay).  The
protocol is intentionally synchronous and round-based so that asynchronous or
multiprocess backends can adapt to it at the round boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Protocol, Tuple, runtime_checkable

from repro.runtime.inmemory import NetworkStats
from repro.runtime.messages import Message


@runtime_checkable
class Transport(Protocol):
    """What the system orchestrator requires from a message transport."""

    #: Accumulated counters (messages sent/delivered/dropped, payload items).
    stats: NetworkStats

    # -- registration -------------------------------------------------- #

    def register(self, peer: str, address: Optional[str] = None) -> None:
        """Make ``peer`` addressable."""

    def unregister(self, peer: str) -> None:
        """Remove ``peer``; undelivered messages to it are dropped."""

    def peers(self) -> Tuple[str, ...]:
        """Registered peer names, sorted."""

    def is_registered(self, peer: str) -> bool:
        """``True`` when ``peer`` is registered."""

    # -- deliver ------------------------------------------------------- #

    def send(self, message: Message) -> bool:
        """Queue a message; ``False`` when the loss model dropped it."""

    def send_all(self, messages: Iterable[Message]) -> int:
        """Queue a batch; returns how many were accepted."""

    # -- collect ------------------------------------------------------- #

    def receive(self, peer: str) -> List[Message]:
        """Remove and return the messages due to ``peer`` at this round."""

    def advance_round(self) -> int:
        """Mark the end of a round; returns the new round number."""

    def pending_count(self, peer: Optional[str] = None) -> int:
        """Messages still in flight (optionally for one recipient)."""

    def has_in_flight(self) -> bool:
        """``True`` while at least one message is undelivered.

        Optional extension: transports that model latency may additionally
        expose ``due_count(peer) -> int`` — the messages deliverable *now* —
        which event-driven schedulers use for exact peer activation.  It is
        not part of the protocol so minimal transports stay conformant; the
        schedulers fall back to :meth:`pending_count`.
        """

    # -- stats --------------------------------------------------------- #

    def reset_stats(self) -> NetworkStats:
        """Return the counters accumulated so far and start fresh ones."""


@dataclass(frozen=True)
class TransportEvent:
    """One entry of a :class:`RecordingTransport` log."""

    round_number: int
    action: str  # "send", "drop", "deliver", "register", "unregister"
    peer: str
    message: Optional[Message] = None


class RecordingTransport:
    """A decorator that logs every operation of an inner transport.

    The wrapped transport's semantics are unchanged — same delivery order,
    same latency, same loss model — so a system driven through a
    ``RecordingTransport(InMemoryTransport())`` reaches exactly the same
    fixpoint as one driven through the bare transport.  The ``events`` list
    holds :class:`TransportEvent` records in the order they happened.

    ``log_path`` additionally streams every event to a JSONL file in the
    shared network-event format of :class:`repro.net.events.NetEventLog`
    (one object per line: ``ts`` is the round number, ``node`` the peer,
    ``action`` the event kind) — the same sink the TCP transport and the
    gossip simulator write, so one tool chain reads all three.
    """

    def __init__(self, inner: Transport, log_path: Optional[str] = None):
        self.inner = inner
        self.events: List[TransportEvent] = []
        self._round = 0
        self._event_log = None
        if log_path is not None:
            # Imported lazily: repro.runtime must stay importable without
            # repro.net (and net imports runtime, so a module-level import
            # here would cycle during package initialisation).
            from repro.net.events import NetEventLog
            self._event_log = NetEventLog(path=log_path, keep_in_memory=False)

    # -- registration -------------------------------------------------- #

    def register(self, peer: str, address: Optional[str] = None) -> None:
        self.inner.register(peer, address)
        self._log("register", peer)

    def unregister(self, peer: str) -> None:
        self.inner.unregister(peer)
        self._log("unregister", peer)

    def peers(self) -> Tuple[str, ...]:
        return self.inner.peers()

    def is_registered(self, peer: str) -> bool:
        return self.inner.is_registered(peer)

    # -- deliver ------------------------------------------------------- #

    def send(self, message: Message) -> bool:
        queued = self.inner.send(message)
        self._log("send" if queued else "drop", message.recipient, message)
        return queued

    def send_all(self, messages: Iterable[Message]) -> int:
        return sum(1 for message in messages if self.send(message))

    # -- collect ------------------------------------------------------- #

    def receive(self, peer: str) -> List[Message]:
        delivered = self.inner.receive(peer)
        for message in delivered:
            self._log("deliver", peer, message)
        return delivered

    def advance_round(self) -> int:
        self._round = self.inner.advance_round()
        return self._round

    def pending_count(self, peer: Optional[str] = None) -> int:
        return self.inner.pending_count(peer)

    def due_count(self, peer: str) -> int:
        inner_due = getattr(self.inner, "due_count", None)
        if inner_due is not None:
            return inner_due(peer)
        return self.inner.pending_count(peer)

    def has_in_flight(self) -> bool:
        return self.inner.has_in_flight()

    # -- stats --------------------------------------------------------- #

    @property
    def stats(self) -> NetworkStats:
        return self.inner.stats

    def reset_stats(self) -> NetworkStats:
        return self.inner.reset_stats()

    # -- log access ---------------------------------------------------- #

    def events_of(self, action: str) -> List[TransportEvent]:
        """The recorded events of one kind (``"send"``, ``"deliver"``, ...)."""
        return [event for event in self.events if event.action == action]

    def clear_events(self) -> List[TransportEvent]:
        """Return the log recorded so far and start a fresh one."""
        events = self.events
        self.events = []
        return events

    def close(self) -> None:
        """Close the JSONL sink (and the inner transport, when it has one)."""
        if self._event_log is not None:
            self._event_log.close()
        inner_close = getattr(self.inner, "close", None)
        if callable(inner_close):
            inner_close()

    def _log(self, action: str, peer: str, message: Optional[Message] = None) -> None:
        self.events.append(TransportEvent(
            round_number=self._round, action=action, peer=peer, message=message,
        ))
        if self._event_log is not None:
            fields = {}
            if message is not None:
                fields = {"message_id": message.message_id,
                          "kind": message.kind(), "sender": message.sender,
                          "recipient": message.recipient}
            self._event_log.emit(action, peer, float(self._round), **fields)
