"""Messages exchanged between WebdamLog peers.

Four kinds of payload travel on the network, mirroring step 3 of the
computation stage described in the paper:

* **fact updates** (:class:`FactMessage`) — insertions and deletions for
  relations located at the recipient;
* **delegations** (:class:`DelegationInstallMessage`,
  :class:`DelegationRetractMessage`) — rules installed at or retracted from
  the recipient by a remote delegator;
* **control messages** (:class:`PeerJoinMessage`) — used by the "Interaction
  via the Web" scenario where new peers join the system and subscribe to the
  ``sigmod`` peer;
* **replication payloads** (:class:`DeltaEnvelopeMessage`,
  :class:`ReplicationDigestMessage`, :class:`ReplicationPullMessage`,
  :class:`ReplicationAckMessage`) — the dotted delta ops and anti-entropy
  control of causal replication mode (:mod:`repro.replication`), which
  replace raw fact/delegation messages on unreliable transports.

Every message can be encoded to / decoded from a JSON-compatible dictionary
(:meth:`Message.to_wire`, :func:`message_from_wire`) so the same types flow
over both the in-memory and the multi-process transports.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.facts import Fact
from repro.core.rules import Rule
from repro.core.schema import RelationSchema
from repro.provenance.graph import Derivation
from repro.replication.dots import Op
from repro.runtime import wire

_message_counter = itertools.count(1)


def _next_message_id() -> str:
    return f"msg-{next(_message_counter)}"


@dataclass(frozen=True)
class Message:
    """Base class for every message: sender, recipient and a unique identifier."""

    sender: str
    recipient: str
    message_id: str = field(default_factory=_next_message_id)

    def payload_size(self) -> int:
        """Approximate payload size used by the network accounting (in items)."""
        return 1

    def kind(self) -> str:
        """Short type tag used for accounting and wire encoding."""
        return type(self).__name__

    def to_wire(self) -> Dict[str, Any]:
        """Encode the message as a JSON-compatible dictionary."""
        return {
            "kind": self.kind(),
            "sender": self.sender,
            "recipient": self.recipient,
            "message_id": self.message_id,
        }


@dataclass(frozen=True)
class FactMessage(Message):
    """Fact insertions/deletions addressed to relations of the recipient.

    ``derivations`` optionally carries the provenance of the inserted facts
    (the sender's derivations, transitively down to its base facts) so
    provenance-enabled receivers can answer why/lineage queries — and apply
    lineage-based access control — across peer boundaries.
    """

    inserted: FrozenSet[Fact] = frozenset()
    deleted: FrozenSet[Fact] = frozenset()
    derivations: Tuple[Derivation, ...] = ()

    def payload_size(self) -> int:
        """Number of facts (and attached derivations) carried."""
        return len(self.inserted) + len(self.deleted) + len(self.derivations)

    def to_wire(self) -> Dict[str, Any]:
        encoded = super().to_wire()
        encoded["inserted"] = [wire.encode_fact(f) for f in sorted(self.inserted, key=str)]
        encoded["deleted"] = [wire.encode_fact(f) for f in sorted(self.deleted, key=str)]
        encoded["derivations"] = [wire.encode_derivation(d) for d in self.derivations]
        return encoded


@dataclass(frozen=True)
class DelegationInstallMessage(Message):
    """Install a delegated rule at the recipient.

    ``schemas`` carries the schemas (known to the delegator) of the relations
    mentioned in the delegated rule, so the recipient learns, for example,
    that the head relation is intensional at the delegator.  This mirrors the
    run-time relation discovery the paper describes.
    """

    delegation_id: str = ""
    rule: Optional[Rule] = None
    schemas: Tuple[RelationSchema, ...] = ()

    def payload_size(self) -> int:
        """A delegation counts as one rule plus its attached schemas."""
        return 1 + len(self.schemas)

    def to_wire(self) -> Dict[str, Any]:
        encoded = super().to_wire()
        encoded["delegation_id"] = self.delegation_id
        encoded["rule"] = wire.encode_rule(self.rule) if self.rule is not None else None
        encoded["schemas"] = [wire.encode_schema(s) for s in self.schemas]
        return encoded


@dataclass(frozen=True)
class DelegationRetractMessage(Message):
    """Retract a previously installed delegation."""

    delegation_id: str = ""

    def to_wire(self) -> Dict[str, Any]:
        encoded = super().to_wire()
        encoded["delegation_id"] = self.delegation_id
        return encoded


@dataclass(frozen=True)
class PeerJoinMessage(Message):
    """Announce a new peer (name and address) to the recipient."""

    peer_name: str = ""
    address: str = ""

    def to_wire(self) -> Dict[str, Any]:
        encoded = super().to_wire()
        encoded["peer_name"] = self.peer_name
        encoded["address"] = self.address
        return encoded


@dataclass(frozen=True)
class DeltaEnvelopeMessage(Message):
    """A batch of dotted delta ops on one replication channel.

    Applying an envelope is an idempotent, commutative causal join: the
    recipient's inbox filters already-joined sequence numbers, so drops are
    repaired by retransmission, duplicates are absorbed, and reordering is
    resolved by the dot sets.  ``frontier`` advertises the sender's highest
    sequence number so the recipient can detect gaps without a digest.
    """

    ops: Tuple[Op, ...] = ()
    frontier: int = 0

    def payload_size(self) -> int:
        """Number of ops carried."""
        return len(self.ops)

    def to_wire(self) -> Dict[str, Any]:
        encoded = super().to_wire()
        encoded["ops"] = [wire.encode_op(op) for op in self.ops]
        encoded["frontier"] = self.frontier
        return encoded


@dataclass(frozen=True)
class ReplicationDigestMessage(Message):
    """Anti-entropy digest: the sender's channel frontier."""

    frontier: int = 0

    def to_wire(self) -> Dict[str, Any]:
        encoded = super().to_wire()
        encoded["frontier"] = self.frontier
        return encoded


@dataclass(frozen=True)
class ReplicationPullMessage(Message):
    """Anti-entropy pull: sequence numbers the sender's inbox is missing."""

    want: Tuple[int, ...] = ()

    def payload_size(self) -> int:
        """Number of sequence numbers requested."""
        return len(self.want)

    def to_wire(self) -> Dict[str, Any]:
        encoded = super().to_wire()
        encoded["want"] = list(self.want)
        return encoded


@dataclass(frozen=True)
class ReplicationAckMessage(Message):
    """Contiguous-frontier acknowledgement: the producer may prune its log."""

    acked: int = 0

    def to_wire(self) -> Dict[str, Any]:
        encoded = super().to_wire()
        encoded["acked"] = self.acked
        return encoded


def message_from_wire(encoded: Dict[str, Any]) -> Message:
    """Decode a message produced by :meth:`Message.to_wire`."""
    kind = encoded.get("kind")
    common = {
        "sender": encoded["sender"],
        "recipient": encoded["recipient"],
        "message_id": encoded.get("message_id", _next_message_id()),
    }
    if kind == "FactMessage":
        return FactMessage(
            inserted=frozenset(wire.decode_fact(f) for f in encoded.get("inserted", [])),
            deleted=frozenset(wire.decode_fact(f) for f in encoded.get("deleted", [])),
            derivations=tuple(wire.decode_derivation(d)
                              for d in encoded.get("derivations", [])),
            **common,
        )
    if kind == "DelegationInstallMessage":
        rule = encoded.get("rule")
        return DelegationInstallMessage(
            delegation_id=encoded.get("delegation_id", ""),
            rule=wire.decode_rule(rule) if rule is not None else None,
            schemas=tuple(wire.decode_schema(s) for s in encoded.get("schemas", [])),
            **common,
        )
    if kind == "DelegationRetractMessage":
        return DelegationRetractMessage(
            delegation_id=encoded.get("delegation_id", ""), **common
        )
    if kind == "PeerJoinMessage":
        return PeerJoinMessage(
            peer_name=encoded.get("peer_name", ""), address=encoded.get("address", ""),
            **common,
        )
    if kind == "DeltaEnvelopeMessage":
        return DeltaEnvelopeMessage(
            ops=tuple(wire.decode_op(op) for op in encoded.get("ops", [])),
            frontier=encoded.get("frontier", 0),
            **common,
        )
    if kind == "ReplicationDigestMessage":
        return ReplicationDigestMessage(frontier=encoded.get("frontier", 0), **common)
    if kind == "ReplicationPullMessage":
        return ReplicationPullMessage(
            want=tuple(encoded.get("want", ())), **common,
        )
    if kind == "ReplicationAckMessage":
        return ReplicationAckMessage(acked=encoded.get("acked", 0), **common)
    raise ValueError(f"unknown message kind {kind!r}")


def batch_payload_size(messages: Iterable[Message]) -> int:
    """Total payload size of a batch of messages."""
    return sum(message.payload_size() for message in messages)
