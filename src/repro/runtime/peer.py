"""A runtime peer: engine + delegation control + wrappers + transport glue.

:class:`Peer` owns one :class:`~repro.core.engine.WebdamLogEngine` and wires
it to the rest of the system:

* incoming messages are dispatched to the engine — delegation installs go
  through the :class:`~repro.acl.delegation_control.DelegationController`
  first, implementing the paper's control-of-delegation model;
* the outputs of a stage are converted into messages for the transport,
  attaching the schemas of the relations a delegated rule mentions so the
  recipient discovers them (run-time relation discovery);
* attached wrappers get ``before_stage`` / ``after_stage`` hooks so external
  services (the simulated Facebook, email, Dropbox) can exchange facts with
  the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.acl.delegation_control import DelegationController, DelegationDecision
from repro.acl.trust import TrustStore
from repro.core.delegation import Delegation
from repro.core.engine import StageResult, WebdamLogEngine
from repro.core.facts import Delta, Fact
from repro.core.rules import Atom, Rule
from repro.core.schema import RelationSchema, SchemaRegistry
from repro.provenance.graph import Derivation as ProvenanceDerivation
from repro.provenance.graph import Explanation, ProvenanceTracker
from repro.replication import resolve_replication_mode
from repro.replication.state import ReplicationState
from repro.runtime.messages import (
    DelegationInstallMessage,
    DelegationRetractMessage,
    DeltaEnvelopeMessage,
    FactMessage,
    Message,
    PeerJoinMessage,
    ReplicationAckMessage,
    ReplicationDigestMessage,
    ReplicationPullMessage,
)


@dataclass
class PeerStageReport:
    """What one peer did during one runtime round."""

    peer: str
    stage_result: StageResult
    delivered_messages: int = 0
    sent_messages: int = 0
    pending_delegations: int = 0

    def is_quiescent(self) -> bool:
        """``True`` when the peer neither received nor produced anything."""
        return self.delivered_messages == 0 and self.stage_result.is_quiescent()


class Peer:
    """One WebdamLog peer as seen by the runtime."""

    def __init__(self, name: str, trust: Optional[TrustStore] = None,
                 auto_accept_delegations: bool = False,
                 strict_stage_inputs: bool = False,
                 schemas: Optional[SchemaRegistry] = None,
                 evaluation_mode: str = "incremental",
                 provenance: bool = False,
                 storage=None, storage_options: Optional[Dict] = None,
                 planner: Optional[str] = None,
                 replication: Optional[str] = None):
        self.name = name
        self.engine = WebdamLogEngine(name, schemas=schemas,
                                      strict_stage_inputs=strict_stage_inputs,
                                      evaluation_mode=evaluation_mode,
                                      storage=storage,
                                      storage_options=storage_options,
                                      planner=planner)
        if provenance:
            self.engine.provenance = ProvenanceTracker()
        # Replication mode: ``"reliable"`` ships raw fact/delegation messages
        # (the historical behaviour, assumes exactly-once in-order delivery);
        # ``"causal"`` ships dotted delta envelopes with anti-entropy (see
        # repro.replication).  ``None`` defers to REPRO_REPLICATION.
        self.replication_mode = resolve_replication_mode(replication)
        if self.replication_mode == "causal":
            self.replication: Optional[ReplicationState] = ReplicationState(name)
            self.replication.restore(self.engine.state.backend)
            # Remote-provided facts are volatile engine state: a reliable-mode
            # restart recovers them because the restarted *sender* re-ships
            # everything, but a causal outbox's live-set dedup suppresses that
            # re-send.  The inbox already knows exactly which facts have been
            # delivered, so re-inject them (idempotently) on reopen.
            for origin, box in sorted(self.replication.inboxes.items()):
                if box.visible:
                    self.engine.receive_facts(
                        origin, inserted=tuple(sorted(box.visible, key=str)))
        else:
            self.replication = None
        self.controller = DelegationController(
            self.engine,
            trust=trust if trust is not None else TrustStore(name),
            auto_accept_all=auto_accept_delegations,
        )
        self.wrappers: List = []
        self.known_peers: Dict[str, str] = {name: name}
        # Derivations already shipped to each target (keyed like the
        # tracker's remote memory), so updates carry each one only once —
        # plus the facts appearing in that shipped lineage, so *alternative*
        # derivations recorded later for an already-shipped fact can be
        # routed to the targets that care.
        self._sent_derivations: Dict[str, set] = {}
        self._sent_lineage_facts: Dict[str, set] = {}
        self._round = 0

    # ------------------------------------------------------------------ #
    # user-facing conveniences (thin wrappers over the engine)
    # ------------------------------------------------------------------ #

    def load_program(self, program: str):
        """Load a WebdamLog program text into the peer's engine."""
        return self.engine.load_program(program)

    def add_rule(self, rule: Union[str, Rule]) -> Rule:
        """Add a rule to the peer's own program."""
        return self.engine.add_rule(rule)

    def replace_rule(self, rule_id: str, new_rule: Union[str, Rule]) -> Rule:
        """Replace one of the peer's own rules (Wepic rule customisation)."""
        return self.engine.replace_rule(rule_id, new_rule)

    def remove_rule(self, rule_id: str) -> Optional[Rule]:
        """Remove one of the peer's own rules by identifier."""
        return self.engine.remove_rule(rule_id)

    def remove_rules(self, rule_ids: Iterable[str]) -> List[Rule]:
        """Remove several own rules at once (live-view uninstall path)."""
        return self.engine.remove_rules(rule_ids)

    def insert_fact(self, fact: Union[str, Fact]) -> Delta:
        """Insert a base fact (local) or queue an update (remote)."""
        return self.engine.insert_fact(fact)

    def insert_facts(self, facts: Iterable[Union[str, Fact]]) -> Delta:
        """Insert many base facts at once (batched store write)."""
        return self.engine.insert_facts(facts)

    def delete_fact(self, fact: Union[str, Fact]) -> Delta:
        """Delete a base fact (local) or queue a remote deletion."""
        return self.engine.delete_fact(fact)

    def declare(self, schema: RelationSchema) -> RelationSchema:
        """Declare a relation schema."""
        return self.engine.declare(schema)

    def query(self, relation: str, peer: Optional[str] = None) -> Tuple[Fact, ...]:
        """Facts of ``relation`` visible at this peer."""
        return self.engine.query(relation, peer)

    def rules(self) -> Tuple[Rule, ...]:
        """The peer's own rules."""
        return self.engine.rules()

    def installed_delegations(self):
        """Delegations installed at this peer (after approval)."""
        return self.engine.installed_delegations()

    def pending_delegations(self):
        """Delegations waiting for the user's approval."""
        return self.controller.pending()

    def approve_delegation(self, delegation_id: str):
        """Approve one pending delegation."""
        return self.controller.approve(delegation_id)

    def approve_all_delegations(self, delegator: Optional[str] = None):
        """Approve every pending delegation (optionally from one delegator)."""
        return self.controller.approve_all(delegator)

    def reject_delegation(self, delegation_id: str):
        """Reject one pending delegation."""
        return self.controller.reject(delegation_id)

    def trust_peer(self, peer: str) -> None:
        """Add ``peer`` to this peer's trusted set."""
        self.controller.trust.trust(peer)

    def attach_wrapper(self, wrapper) -> None:
        """Attach a wrapper (simulated external service) to this peer."""
        self.wrappers.append(wrapper)
        attach = getattr(wrapper, "attach", None)
        if attach is not None:
            attach(self)
        # The wrapper may surface external data at its next before_stage hook.
        self.engine.mark_dirty()

    @property
    def provenance(self) -> Optional[ProvenanceTracker]:
        """The engine's provenance tracker (``None`` when not enabled)."""
        return self.engine.provenance

    def explain(self, fact: Fact) -> Explanation:
        """Why/lineage story of ``fact`` from the maintained provenance graph."""
        tracker = self.engine.provenance
        if tracker is None or not hasattr(tracker, "explain"):
            raise RuntimeError(
                f"peer {self.name!r} has no provenance tracker attached; "
                "enable it with system().provenance() or "
                "Peer(..., provenance=True)"
            )
        return tracker.explain(fact)

    def needs_stage(self) -> bool:
        """``True`` when running a stage at this peer could change anything.

        Event-driven schedulers use this to skip peers that are guaranteed to
        run a quiescent stage.  Peers with wrappers are never safe to skip on
        this basis alone — the wrapped external service may have changed —
        which is why schedulers also consult :attr:`wrappers`.

        In causal mode, replication attention (unsent ops, unacknowledged
        channels, queued anti-entropy control) also demands a stage: the
        digest/pull/ack protocol must run to completion before the peer may
        look quiescent.
        """
        if self.replication is not None and self.replication.needs_attention():
            return True
        return self.engine.needs_stage()

    def counts(self) -> Dict[str, int]:
        """Combined engine and controller counters."""
        combined = dict(self.engine.counts())
        combined["pending_delegations"] = len(self.controller.pending())
        return combined

    def close(self) -> None:
        """Commit and release the peer's storage backend."""
        self.engine.close()

    # ------------------------------------------------------------------ #
    # transport-facing methods
    # ------------------------------------------------------------------ #

    def deliver(self, message: Message) -> None:
        """Dispatch one incoming message to the engine / controller."""
        if isinstance(message, (DeltaEnvelopeMessage, ReplicationDigestMessage,
                                ReplicationPullMessage, ReplicationAckMessage)):
            if self.replication is None:
                raise TypeError(
                    f"peer {self.name!r} runs reliable replication but received "
                    f"a {message.kind()}; every peer of a deployment must use "
                    "the same replication mode"
                )
            if isinstance(message, DeltaEnvelopeMessage):
                effects = self.replication.apply_envelope(message)
                self._apply_replication_effects(message.sender, effects)
            elif isinstance(message, ReplicationDigestMessage):
                self.replication.on_digest(message.sender, message.frontier)
            elif isinstance(message, ReplicationPullMessage):
                self.replication.on_pull(message.sender, message.want)
            else:
                self.replication.on_ack(message.sender, message.acked)
        elif isinstance(message, FactMessage):
            self.engine.receive_facts(message.sender, message.inserted, message.deleted)
            tracker = self.engine.provenance
            if message.derivations and tracker is not None \
                    and hasattr(tracker, "record_remote"):
                for derivation in message.derivations:
                    # Only the message-inserted facts are anchors; lineage
                    # intermediates live as long as an anchor reaches them.
                    tracker.record_remote(
                        derivation, anchor=derivation.fact in message.inserted)
        elif isinstance(message, DelegationInstallMessage):
            for schema in message.schemas:
                try:
                    self.engine.declare(schema)
                except Exception:
                    # Conflicting schema knowledge: keep the local declaration.
                    pass
            if message.rule is not None:
                self.controller.submit(message.sender, message.delegation_id, message.rule,
                                       round_number=self._round)
        elif isinstance(message, DelegationRetractMessage):
            self.controller.submit_retraction(message.sender, message.delegation_id)
        elif isinstance(message, PeerJoinMessage):
            self.known_peers[message.peer_name] = message.address or message.peer_name
        else:  # pragma: no cover - defensive
            raise TypeError(f"peer {self.name} cannot handle message {message!r}")

    def deliver_all(self, messages: Iterable[Message]) -> int:
        """Deliver a batch of messages; returns how many were processed."""
        count = 0
        for message in messages:
            self.deliver(message)
            count += 1
        return count

    def _apply_replication_effects(self, origin: str, effects) -> None:
        """Feed an envelope's visibility transitions to the engine.

        The effects are exactly what the reliable-mode message dispatch
        would have done — fact updates through :meth:`receive_facts`,
        delegations through the controller, derivations into the tracker —
        so the engine's skip/delta/rederive input paths see no difference.
        """
        for effect in effects:
            kind = effect[0]
            if kind == "insert":
                self.engine.receive_facts(origin, inserted=(effect[1],))
            elif kind == "delete":
                self.engine.receive_facts(origin, deleted=(effect[1],))
            elif kind == "delegate":
                _, delegation_id, rule, schemas = effect
                for schema in schemas:
                    try:
                        self.engine.declare(schema)
                    except Exception:
                        # Conflicting schema knowledge: keep the local one.
                        pass
                if rule is not None:
                    self.controller.submit(origin, delegation_id, rule,
                                           round_number=self._round)
            elif kind == "undelegate":
                self.controller.submit_retraction(origin, effect[1])
            elif kind == "derivation":
                tracker = self.engine.provenance
                if tracker is not None and hasattr(tracker, "record_remote"):
                    tracker.record_remote(effect[1], anchor=effect[2])

    def notify_send_failed(self, message: Message) -> None:
        """The transport rejected a message (unknown recipient).

        In causal mode the channel to that target is marked unreachable so
        its unacknowledged ops stop demanding attention — mirroring the
        reliable-mode behaviour, where such messages are silently lost
        (wrapper-only pseudo-peers).
        """
        if self.replication is not None:
            self.replication.mark_unreachable(message.recipient)

    def drop_replication_channel(self, peer: str) -> None:
        """Forget the replication channels shared with a removed peer."""
        if self.replication is not None:
            self.replication.drop_channel(peer)

    def run_stage(self) -> Tuple[StageResult, List[Message]]:
        """Run one engine stage and convert its outputs into messages.

        In causal replication mode the stage's messages are absorbed into
        channel ops and re-emitted as delta envelopes (plus the anti-entropy
        control traffic); the channel state is persisted inside the same
        transaction as the engine's stage commit, so recovery replays to the
        same causal join.
        """
        self._round += 1
        for wrapper in self.wrappers:
            before = getattr(wrapper, "before_stage", None)
            if before is not None:
                before(self)
        if self.replication is None:
            result = self.engine.run_stage()
            outgoing = self._messages_from(result)
        else:
            result = self.engine.run_stage(commit=False)
            outgoing = self.replication.encode_outgoing(self._messages_from(result))
            outgoing.extend(self.replication.flush())
            self.replication.persist(self.engine.state.backend)
            self.engine.state.commit()
        for wrapper in self.wrappers:
            after = getattr(wrapper, "after_stage", None)
            if after is not None:
                after(self, result)
        return result, outgoing

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _messages_from(self, result: StageResult) -> List[Message]:
        messages: List[Message] = []
        shipped: Dict[str, Tuple[ProvenanceDerivation, ...]] = {}
        for update in result.outgoing_updates:
            shipped[update.target] = self._derivations_for(
                update.target, update.inserted, update.deleted)
        extra = self._fresh_derivation_messages()
        for update in result.outgoing_updates:
            target = update.target
            messages.append(FactMessage(
                sender=self.name,
                recipient=target,
                inserted=frozenset(update.inserted),
                deleted=frozenset(update.deleted),
                derivations=shipped[target] + extra.pop(target, ()),
            ))
        for target, derivations in extra.items():
            # Alternative derivations of facts already at the target: the
            # facts themselves produce no update, so they travel alone.
            messages.append(FactMessage(
                sender=self.name, recipient=target, derivations=derivations,
            ))
        for delegation in result.delegations_to_install:
            messages.append(DelegationInstallMessage(
                sender=self.name,
                recipient=delegation.target,
                delegation_id=delegation.delegation_id,
                rule=delegation.rule,
                schemas=self._schemas_for(delegation),
            ))
        for delegation in result.delegations_to_retract:
            messages.append(DelegationRetractMessage(
                sender=self.name,
                recipient=delegation.target,
                delegation_id=delegation.delegation_id,
            ))
        return messages

    def _derivations_for(self, target: str, inserted: Iterable[Fact],
                         deleted: Iterable[Fact]
                         ) -> Tuple[ProvenanceDerivation, ...]:
        """The sender-side provenance shipped with one outgoing update.

        Walks the transitive derivation closure of the inserted facts in
        this peer's graph (so the receiver can answer lineage queries down
        to this peer's base facts) but ships each derivation to a given
        target only once, and prunes the walk at derivations earlier updates
        already carried — their closure was walked when they were first
        shipped, so each update costs its *new* lineage, not the accumulated
        history.  A deletion resets the target's memo: the receiver
        garbage-collects the retracted facts' lineage, so later
        re-insertions must re-ship their closure (re-recording shipped
        derivations is idempotent on the receiving side).  Empty when
        provenance is not enabled.
        """
        tracker = self.engine.provenance
        graph = getattr(tracker, "graph", None)
        if graph is None:
            return ()
        sent = self._sent_derivations.setdefault(target, set())
        lineage = self._sent_lineage_facts.setdefault(target, set())
        if deleted:
            sent.clear()
            lineage.clear()
        return self._walk_closure(graph, sent, lineage, sorted(inserted, key=str))

    def _walk_closure(self, graph, sent: set, lineage: set,
                      frontier: List[Fact]) -> Tuple[ProvenanceDerivation, ...]:
        """Collect the unshipped derivation closure of ``frontier`` facts,
        updating the target's shipping memo and lineage-fact set."""
        collected: List[ProvenanceDerivation] = []
        seen: set = set()
        while frontier:
            fact = frontier.pop()
            if fact in seen:
                continue
            seen.add(fact)
            for derivation in graph.derivations_of(fact):
                key = derivation.key()
                if key in sent:
                    continue
                sent.add(key)
                lineage.add(derivation.fact)
                lineage.update(derivation.support)
                collected.append(derivation)
                frontier.extend(derivation.support)
        return tuple(collected)

    def _fresh_derivation_messages(self) -> Dict[str, Tuple[ProvenanceDerivation, ...]]:
        """Route newly recorded derivations to targets holding their facts.

        A fact that gains an *alternative* derivation is itself unchanged,
        so no update message exists to carry the new lineage — without this,
        a receiver's explain/ACL answers would stay pinned to the first
        derivation ever shipped.  Each fresh derivation goes to every target
        whose shipped lineage contains its fact (the per-target memo already
        holds everything shipped through the normal update path this stage).
        """
        tracker = self.engine.provenance
        graph = getattr(tracker, "graph", None)
        if graph is None or not hasattr(tracker, "drain_new_derivations"):
            return {}
        fresh = tracker.drain_new_derivations()
        if not fresh:
            return {}
        routed: Dict[str, Tuple[ProvenanceDerivation, ...]] = {}
        for target, lineage in self._sent_lineage_facts.items():
            relevant = [d for d in fresh
                        if d.fact in lineage
                        and d.key() not in self._sent_derivations[target]]
            if not relevant:
                continue
            sent = self._sent_derivations[target]
            collected: List[ProvenanceDerivation] = []
            for derivation in relevant:
                if derivation.key() in sent:
                    continue
                sent.add(derivation.key())
                lineage.add(derivation.fact)
                lineage.update(derivation.support)
                collected.append(derivation)
                # New supports may be facts never shipped: carry their
                # lineage too, so the receiver reaches base facts.
                collected.extend(self._walk_closure(
                    graph, sent, lineage, list(derivation.support)))
            if collected:
                routed[target] = tuple(collected)
        return routed

    def _schemas_for(self, delegation: Delegation) -> Tuple[RelationSchema, ...]:
        """Schemas (known locally) of the relations mentioned by a delegated rule."""
        schemas: List[RelationSchema] = []
        seen = set()
        atoms: Tuple[Atom, ...] = (delegation.rule.head, *delegation.rule.body)
        for atom in atoms:
            relation = atom.relation_constant()
            peer = atom.peer_constant()
            if relation is None or peer is None:
                continue
            schema = self.engine.state.schemas.get(relation, peer)
            if schema is not None and schema.qualified_name not in seen:
                seen.add(schema.qualified_name)
                schemas.append(schema)
        return tuple(schemas)
