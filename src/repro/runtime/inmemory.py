"""The deterministic in-memory transport.

Messages sent during a round are queued and become visible to their recipient
``latency`` rounds later (default: the next round).  The transport keeps
detailed accounting — number of messages, payload items, per-kind and
per-link counters — which the benchmark harness reads to reproduce the
paper's qualitative claims (how much data moves, and between whom).

An optional drop probability (with a seeded random generator) supports the
failure-injection tests.

:class:`InMemoryTransport` is the reference implementation of the
:class:`~repro.runtime.transport.Transport` protocol; ``InMemoryNetwork`` is
its deprecated historical name, kept as an alias for one release.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.errors import TransportError
from repro.runtime.messages import Message


@dataclass
class NetworkStats:
    """Counters accumulated by the network since creation (or the last reset)."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    payload_items: int = 0
    by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    by_link: Dict[Tuple[str, str], int] = field(default_factory=lambda: defaultdict(int))

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view used by the benchmark reports."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "payload_items": self.payload_items,
            "by_kind": dict(self.by_kind),
            "by_link": {f"{s}->{r}": count for (s, r), count in self.by_link.items()},
        }


class InMemoryTransport:
    """A simulated network with per-round delivery.

    Parameters
    ----------
    latency:
        Number of rounds between sending and delivery.  ``1`` (default) means
        a message sent during round *t* is readable at round *t + 1*, which
        matches the stage semantics of the paper (step 3 of one stage feeds
        step 1 of the recipient's next stage).
    drop_probability:
        Probability that a message is silently dropped, for failure-injection
        tests.  ``0.0`` by default.
    seed:
        Seed of the random generator used for drops (and duplicates/jitter).
    duplicate_probability:
        Probability that a queued message is delivered *twice* (an extra
        copy is queued), modelling at-least-once networks.  ``0.0`` by
        default.
    latency_jitter:
        Maximum extra delivery latency, in rounds: each queued message waits
        ``latency + uniform(0..latency_jitter)`` rounds, so messages can
        overtake each other.  ``0`` by default.
    shuffle_seed:
        When not ``None``, each :meth:`receive` batch is returned in a
        seeded-random order instead of send order — the adversarial
        reordering knob of the confluence tests.
    loss_probability:
        Alias of ``drop_probability`` (the replication literature's name for
        the same knob).  At most one of the two may be given.
    reorder_window:
        Bounded in-batch reordering: each :meth:`receive` batch is sorted by
        ``index + uniform(0, reorder_window)``, so a message can be displaced
        by at most ``reorder_window`` positions.  Unlike ``shuffle_seed``
        (unbounded permutation) this models real-network reordering where
        displacement is limited.  ``0`` (off) by default.
    event_log:
        An optional :class:`~repro.net.events.NetEventLog` (or anything with
        its ``emit`` signature).  Every ``send``/``drop``/``dup``/``deliver``
        and ``register``/``unregister`` decision is recorded, so a failure
        schedule can be replayed (and audited) from the JSONL stream.
        Timestamps are virtual (the transport round).
    """

    def __init__(self, latency: int = 1, drop_probability: float = 0.0,
                 seed: Optional[int] = 0,
                 duplicate_probability: float = 0.0,
                 latency_jitter: int = 0,
                 shuffle_seed: Optional[int] = None,
                 loss_probability: Optional[float] = None,
                 reorder_window: int = 0,
                 event_log=None):
        if loss_probability is not None:
            if drop_probability:
                raise ValueError(
                    "pass drop_probability or loss_probability, not both"
                )
            drop_probability = loss_probability
        if latency < 0:
            raise ValueError("latency must be >= 0")
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be within [0, 1]")
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError("duplicate_probability must be within [0, 1]")
        if latency_jitter < 0:
            raise ValueError("latency_jitter must be >= 0")
        if reorder_window < 0:
            raise ValueError("reorder_window must be >= 0")
        self.latency = latency
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self.latency_jitter = latency_jitter
        self.reorder_window = reorder_window
        self.event_log = event_log
        self._random = random.Random(seed)
        self._shuffle = (random.Random(shuffle_seed)
                         if shuffle_seed is not None else None)
        self._round = 0
        self._registered: Dict[str, str] = {}
        # recipient -> list of (deliver_at_round, message)
        self._in_flight: Dict[str, List[Tuple[int, Message]]] = defaultdict(list)
        self.stats = NetworkStats()

    def _emit(self, action: str, node: str, **fields) -> None:
        if self.event_log is not None:
            self.event_log.emit(action, node, float(self._round), **fields)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(self, peer: str, address: Optional[str] = None) -> None:
        """Register a peer so that messages can be addressed to it."""
        self._registered[peer] = address or peer
        self._emit("register", peer)

    def unregister(self, peer: str) -> None:
        """Remove a peer; undelivered messages to it are dropped."""
        self._registered.pop(peer, None)
        dropped = self._in_flight.pop(peer, [])
        self.stats.messages_dropped += len(dropped)
        self._emit("unregister", peer, undelivered=len(dropped))

    def peers(self) -> Tuple[str, ...]:
        """Registered peer names, sorted."""
        return tuple(sorted(self._registered))

    def is_registered(self, peer: str) -> bool:
        """``True`` when ``peer`` is registered."""
        return peer in self._registered

    def address_of(self, peer: str) -> Optional[str]:
        """The registered address of ``peer`` (or ``None``)."""
        return self._registered.get(peer)

    # ------------------------------------------------------------------ #
    # sending and receiving
    # ------------------------------------------------------------------ #

    @property
    def current_round(self) -> int:
        """The current round number (starts at 0, advanced by :meth:`advance_round`)."""
        return self._round

    def send(self, message: Message) -> bool:
        """Queue a message for delivery.

        Returns ``True`` if the message was queued, ``False`` if it was
        dropped by the loss model.  Raises :class:`TransportError` when the
        recipient is unknown.
        """
        if message.recipient not in self._registered:
            raise TransportError(
                f"cannot deliver message from {message.sender}: unknown peer "
                f"{message.recipient!r}"
            )
        self.stats.messages_sent += 1
        self.stats.by_kind[message.kind()] += 1
        self.stats.by_link[(message.sender, message.recipient)] += 1
        self.stats.payload_items += message.payload_size()
        if self.drop_probability and self._random.random() < self.drop_probability:
            self.stats.messages_dropped += 1
            self._emit("drop", message.sender, message_id=message.message_id,
                       kind=message.kind(), peer=message.recipient)
            return False
        copies = 1
        if (self.duplicate_probability
                and self._random.random() < self.duplicate_probability):
            copies = 2
            self._emit("dup", message.sender, message_id=message.message_id,
                       kind=message.kind(), peer=message.recipient)
        self._emit("send", message.sender, message_id=message.message_id,
                   kind=message.kind(), peer=message.recipient,
                   payload=message.payload_size())
        for _ in range(copies):
            deliver_at = self._round + self.latency
            if self.latency_jitter:
                deliver_at += self._random.randint(0, self.latency_jitter)
            self._in_flight[message.recipient].append((deliver_at, message))
        return True

    def send_all(self, messages: Iterable[Message]) -> int:
        """Send a batch of messages; returns how many were queued (not dropped)."""
        queued = 0
        for message in messages:
            if self.send(message):
                queued += 1
        return queued

    def receive(self, peer: str) -> List[Message]:
        """Remove and return the messages deliverable to ``peer`` at the current round."""
        pending = self._in_flight.get(peer, [])
        deliverable = [m for deliver_at, m in pending if deliver_at <= self._round]
        remaining = [(deliver_at, m) for deliver_at, m in pending if deliver_at > self._round]
        self._in_flight[peer] = remaining
        if self._shuffle is not None:
            self._shuffle.shuffle(deliverable)
        elif self.reorder_window and len(deliverable) > 1:
            # Bounded displacement: each message drifts forward by at most
            # ``reorder_window`` positions (stable sort on a jittered index).
            jittered = [(i + self._random.uniform(0, self.reorder_window), m)
                        for i, m in enumerate(deliverable)]
            jittered.sort(key=lambda pair: pair[0])
            deliverable = [m for _, m in jittered]
        self.stats.messages_delivered += len(deliverable)
        for m in deliverable:
            self._emit("deliver", peer, message_id=m.message_id,
                       kind=m.kind(), peer_from=m.sender)
        return deliverable

    def advance_round(self) -> int:
        """Move to the next round and return its number."""
        self._round += 1
        return self._round

    def pending_count(self, peer: Optional[str] = None) -> int:
        """Number of messages still in flight (optionally for one recipient)."""
        if peer is not None:
            return len(self._in_flight.get(peer, []))
        return sum(len(queue) for queue in self._in_flight.values())

    def due_count(self, peer: str) -> int:
        """Messages deliverable to ``peer`` at the current round.

        Unlike :meth:`pending_count`, messages still riding out their latency
        are not counted — event-driven schedulers use this to avoid waking a
        peer before its messages are actually deliverable.
        """
        return sum(1 for deliver_at, _ in self._in_flight.get(peer, ())
                   if deliver_at <= self._round)

    def has_in_flight(self) -> bool:
        """``True`` when at least one message has not been delivered yet."""
        return self.pending_count() > 0

    def reset_stats(self) -> NetworkStats:
        """Return the current statistics and start fresh counters."""
        stats = self.stats
        self.stats = NetworkStats()
        return stats


#: Deprecated alias — the class was renamed when the
#: :class:`~repro.runtime.transport.Transport` protocol was extracted.
#: Use :class:`InMemoryTransport` (or ``repro.api.InMemoryTransport``).
InMemoryNetwork = InMemoryTransport
