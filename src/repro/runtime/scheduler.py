"""Execution drivers: *when* peers run their computation stages.

The WebdamLog model is defined over **autonomous** peers — each peer runs a
local computation stage when inputs arrive, with no global coordination.  The
original runtime nevertheless drove every peer in global lockstep rounds,
which costs one stage execution per peer per round even when only two peers
are exchanging facts.  This module makes the driving policy an injectable
seam of :class:`~repro.runtime.system.WebdamLogSystem`:

* :class:`Scheduler` — the protocol every driver implements: ``step`` runs
  one scheduling cycle, ``converge`` cycles until the system reaches a
  fixpoint.
* :class:`LockstepScheduler` — the historical semantics (every peer runs a
  stage every cycle, in deterministic name order).  It remains the default,
  so existing round-count measurements stay reproducible.
* :class:`ReactiveScheduler` — event-driven: a cycle activates only the
  peers that can make progress (due transport messages, pending engine
  inputs, dirty local state, or an attached wrapper whose external service
  must be polled).  Cycles with no eligible peer still advance the transport
  clock, so in-flight messages with ``latency > 1`` are never forgotten:
  quiescence is only reported when nothing is runnable *and* nothing is in
  flight.
* :class:`AsyncScheduler` — an asyncio driver with one mailbox and one
  worker task per peer, for embedding a deployment in an asynchronous
  application (``await system.aconverge()``).  Eligibility is the reactive
  policy; stages within a cycle are dispatched through the per-peer
  mailboxes and interleave at await points.

All three drivers reach the same fixpoints: a peer whose program is
unchanged, whose stores saw no writes, and which has no pending input is
guaranteed to run a quiescent stage, so skipping it cannot lose derivations
(see :meth:`repro.core.engine.WebdamLogEngine.needs_stage`).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

from repro.runtime.peer import PeerStageReport

if TYPE_CHECKING:
    from repro.runtime.system import WebdamLogSystem

#: Default bound on scheduling cycles used by every ``converge`` driver.
DEFAULT_MAX_STEPS = 100


@dataclass
class RoundReport:
    """What happened during one scheduling cycle.

    Under the lockstep driver a cycle is exactly one historical *round* —
    every peer appears in ``peer_reports``.  Under event-driven drivers only
    the activated peers appear (possibly none, when the cycle merely advanced
    the transport clock past in-flight latency).
    """

    round_number: int
    peer_reports: Dict[str, PeerStageReport] = field(default_factory=dict)
    messages_sent: int = 0
    messages_delivered: int = 0

    @property
    def stages_executed(self) -> int:
        """Number of peer stages executed during this cycle."""
        return len(self.peer_reports)

    def is_quiescent(self) -> bool:
        """``True`` when every activated peer was quiescent this cycle."""
        return all(report.is_quiescent() for report in self.peer_reports.values())

    def total_derived(self) -> int:
        """Total intensional facts derived across peers this cycle."""
        return sum(r.stage_result.derived_intensional for r in self.peer_reports.values())

    def total_delegations_installed(self) -> int:
        """Total delegation-install messages emitted this cycle."""
        return sum(len(r.stage_result.delegations_to_install)
                   for r in self.peer_reports.values())

    def total_substitutions(self) -> int:
        """Total substitutions explored by the fixpoints run this cycle."""
        return sum(r.stage_result.substitutions_explored
                   for r in self.peer_reports.values())


@dataclass
class RunSummary:
    """Summary of one ``converge`` execution."""

    rounds: List[RoundReport] = field(default_factory=list)
    converged: bool = False
    scheduler: str = "lockstep"

    @property
    def round_count(self) -> int:
        """Number of scheduling cycles executed."""
        return len(self.rounds)

    @property
    def rounds_to_convergence(self) -> int:
        """Number of cycles in which real work happened (delivery or derivation).

        This is the index (1-based) of the last non-quiescent cycle; trailing
        quiescent cycles needed only to *detect* convergence are not counted.
        """
        last_active = 0
        for index, report in enumerate(self.rounds, start=1):
            if not report.is_quiescent():
                last_active = index
        return last_active

    def total_messages(self) -> int:
        """Total messages sent across all cycles."""
        return sum(report.messages_sent for report in self.rounds)

    def total_derived(self) -> int:
        """Total intensional derivations across all cycles and peers."""
        return sum(report.total_derived() for report in self.rounds)

    def total_stages(self) -> int:
        """Total peer stage executions across all cycles.

        The headline number of the event-driven drivers: lockstep executes
        ``peers × cycles`` stages, a reactive run only as many as activations
        were warranted.
        """
        return sum(report.stages_executed for report in self.rounds)

    def total_substitutions(self) -> int:
        """Total substitutions explored across all cycles and peers.

        The headline number of the incremental engine: the naive
        clear-and-recompute fixpoint re-explores every derivation at every
        stage, the seminaive engine only what the input deltas reach.
        """
        return sum(report.total_substitutions() for report in self.rounds)


@runtime_checkable
class Scheduler(Protocol):
    """What :class:`~repro.runtime.system.WebdamLogSystem` requires of a driver."""

    #: Short identifier (``"lockstep"``, ``"reactive"``, ``"async"``, ...).
    name: str

    def step(self, system: "WebdamLogSystem") -> RoundReport:
        """Run one scheduling cycle and return its report."""

    def converge(self, system: "WebdamLogSystem",
                 max_steps: Optional[int] = None,
                 extra_rounds: int = 0,
                 quiet_period: Optional[int] = None) -> RunSummary:
        """Cycle until the system reaches a fixpoint (or ``max_steps`` is hit)."""


def resolve_quiet_period(system: "WebdamLogSystem",
                         quiet_period: Optional[int]) -> int:
    """How many *consecutive* settled cycles convergence requires.

    ``1`` (the in-memory default) preserves the historical behaviour: one
    settled cycle proves the fixpoint, because the in-memory transport has a
    perfect in-flight oracle.  Networked transports have a blind spot —
    frames inside socket buffers are invisible to :func:`settled` — so they
    advertise a larger ``convergence_quiet_period`` and the drivers demand
    that many quiet cycles in a row before declaring convergence.  An
    explicit ``quiet_period`` argument overrides the transport's default.
    """
    if quiet_period is not None:
        return max(1, int(quiet_period))
    return max(1, int(getattr(system.transport, "convergence_quiet_period", 1)))


def settled(system: "WebdamLogSystem", report: RoundReport) -> bool:
    """``True`` when ``report`` shows a converged system.

    Convergence means: every stage executed this cycle was quiescent, no
    message remains in flight on the transport (crucial for ``latency > 1``,
    where a message can be undeliverable for several cycles), no engine
    holds unconsumed input, and no causal replication channel is awaiting
    anti-entropy (a dropped digest leaves nothing in flight while an outbox
    is still unacknowledged — the in-flight check alone cannot see it).
    """
    return (report.is_quiescent()
            and not system.transport.has_in_flight()
            and not system.pending_engine_input()
            and not system.replication_attention())


def drive(system: "WebdamLogSystem",
          max_steps: Optional[int] = None,
          quiet_period: Optional[int] = None) -> "Iterator[RoundReport]":
    """Step the system's *configured* scheduler until it settles, yielding
    each cycle's report.

    This is the incremental-consumption counterpart of ``converge()``: a
    caller (e.g. the streaming query machinery in :mod:`repro.api`) can react
    between cycles — observers have already run for every stage of the
    yielded report.  Works under any scheduler, including the asyncio driver
    (whose ``step`` wraps one cycle in ``asyncio.run``).  Like the converge
    drivers it honours the transport's bounded quiet period (see
    :func:`resolve_quiet_period`).
    """
    limit = DEFAULT_MAX_STEPS if max_steps is None else max_steps
    required_quiet = resolve_quiet_period(system, quiet_period)
    quiet = 0
    for _ in range(limit):
        report = system.step()
        yield report
        quiet = quiet + 1 if settled(system, report) else 0
        if quiet >= required_quiet:
            break


def _drive_to_fixpoint(driver: "Scheduler", system: "WebdamLogSystem",
                       max_steps: Optional[int],
                       extra_rounds: int,
                       quiet_period: Optional[int] = None) -> RunSummary:
    """The shared ``converge`` loop: step until :func:`settled` held for the
    required number of consecutive cycles (or the step limit is hit)."""
    limit = DEFAULT_MAX_STEPS if max_steps is None else max_steps
    required_quiet = resolve_quiet_period(system, quiet_period)
    summary = RunSummary(scheduler=driver.name)
    quiet = 0
    for _ in range(limit):
        report = driver.step(system)
        summary.rounds.append(report)
        quiet = quiet + 1 if settled(system, report) else 0
        if quiet >= required_quiet:
            summary.converged = True
            break
    for _ in range(extra_rounds):
        summary.rounds.append(driver.step(system))
    return summary


def reactive_eligible(system: "WebdamLogSystem") -> List[str]:
    """The peers an event-driven cycle must activate, in deterministic order.

    A peer is eligible when it has due transport messages, when its engine
    reports that a stage could change something (pending inputs, dirty rules,
    store writes since the last stage), or when it hosts a wrapper — wrapped
    external services can only surface changes through the wrapper's
    ``before_stage`` poll, so wrapper peers are polled every cycle, exactly
    as the lockstep driver polled them every round.
    """
    eligible: List[str] = []
    for name in sorted(system.peers):
        peer = system.peers[name]
        if peer.wrappers or peer.needs_stage() or system.due_message_count(name):
            eligible.append(name)
    return eligible


class LockstepScheduler:
    """The historical driver: every peer runs one stage every cycle.

    Deterministic and reproducible — the round counts and message totals of
    the paper's benchmarks are defined in terms of this driver — but a cycle
    costs one stage execution per registered peer regardless of activity.
    """

    name = "lockstep"

    def step(self, system: "WebdamLogSystem") -> RoundReport:
        report = system.begin_round()
        for name in sorted(system.peers):
            system.activate_peer(name, report)
        return system.finish_round(report)

    def converge(self, system: "WebdamLogSystem",
                 max_steps: Optional[int] = None,
                 extra_rounds: int = 0,
                 quiet_period: Optional[int] = None) -> RunSummary:
        return _drive_to_fixpoint(self, system, max_steps, extra_rounds,
                                  quiet_period)


class ReactiveScheduler:
    """Event-driven driver: activate only peers with something to do.

    Each cycle computes the eligible set (see :func:`reactive_eligible`),
    runs one stage per eligible peer, and advances the transport clock.  A
    cycle that activates nobody while messages are in flight simply lets the
    clock tick — this is what makes quiescence detection sound for
    ``latency > 1``: convergence is never reported while the transport still
    holds undelivered messages.
    """

    name = "reactive"

    def step(self, system: "WebdamLogSystem") -> RoundReport:
        report = system.begin_round()
        for name in reactive_eligible(system):
            system.activate_peer(name, report)
        return system.finish_round(report)

    def converge(self, system: "WebdamLogSystem",
                 max_steps: Optional[int] = None,
                 extra_rounds: int = 0,
                 quiet_period: Optional[int] = None) -> RunSummary:
        return _drive_to_fixpoint(self, system, max_steps, extra_rounds,
                                  quiet_period)


class AsyncScheduler:
    """Asyncio driver: per-peer mailboxes, stages dispatched as tasks.

    Every peer gets a mailbox (an :class:`asyncio.Queue`) and a long-lived
    worker task.  Each cycle the coordinator posts an activation token to the
    mailboxes of the eligible peers, awaits the workers draining them, then
    advances the transport.  Stages are CPU-bound and therefore interleave
    rather than parallelise, but the driver embeds cleanly in asynchronous
    applications: ``await system.aconverge()`` yields to the event loop
    between stages.

    The synchronous :meth:`converge` entry point wraps :meth:`aconverge` in
    ``asyncio.run`` so the driver also works behind the blocking facade
    (e.g. ``system().scheduler("async").build().run()``).
    """

    name = "async"

    def step(self, system: "WebdamLogSystem") -> RoundReport:
        return asyncio.run(self.astep(system))

    def converge(self, system: "WebdamLogSystem",
                 max_steps: Optional[int] = None,
                 extra_rounds: int = 0,
                 quiet_period: Optional[int] = None) -> RunSummary:
        return asyncio.run(self.aconverge(system, max_steps=max_steps,
                                          extra_rounds=extra_rounds,
                                          quiet_period=quiet_period))

    async def astep(self, system: "WebdamLogSystem") -> RoundReport:
        """Run one asynchronous cycle (one mailbox round-trip per eligible peer)."""
        mailboxes = {name: asyncio.Queue() for name in sorted(system.peers)}
        errors: List[BaseException] = []
        workers = [asyncio.create_task(self._worker(system, name, box, errors))
                   for name, box in mailboxes.items()]
        try:
            return await self._cycle(system, mailboxes, errors)
        finally:
            await self._stop_workers(mailboxes, workers)

    async def aconverge(self, system: "WebdamLogSystem",
                        max_steps: Optional[int] = None,
                        extra_rounds: int = 0,
                        quiet_period: Optional[int] = None) -> RunSummary:
        """Cycle until fixpoint, keeping the per-peer workers alive throughout."""
        limit = DEFAULT_MAX_STEPS if max_steps is None else max_steps
        required_quiet = resolve_quiet_period(system, quiet_period)
        summary = RunSummary(scheduler=self.name)
        mailboxes: Dict[str, asyncio.Queue] = {
            name: asyncio.Queue() for name in sorted(system.peers)
        }
        errors: List[BaseException] = []
        workers = [asyncio.create_task(self._worker(system, name, box, errors))
                   for name, box in mailboxes.items()]
        quiet = 0
        try:
            for _ in range(limit):
                report = await self._cycle(system, mailboxes, errors)
                summary.rounds.append(report)
                quiet = quiet + 1 if settled(system, report) else 0
                if quiet >= required_quiet:
                    summary.converged = True
                    break
            for _ in range(extra_rounds):
                summary.rounds.append(await self._cycle(system, mailboxes, errors))
        finally:
            await self._stop_workers(mailboxes, workers)
        return summary

    async def _cycle(self, system: "WebdamLogSystem",
                     mailboxes: Dict[str, asyncio.Queue],
                     errors: List[BaseException]) -> RoundReport:
        report = system.begin_round()
        posted = []
        for name in reactive_eligible(system):
            box = mailboxes.get(name)
            if box is None:  # peer added mid-run: give it a mailbox-less stage
                system.activate_peer(name, report)
                continue
            box.put_nowait(report)
            posted.append(box)
        for box in posted:
            await box.join()
        report = system.finish_round(report)
        if errors:
            # A stage (or an observer callback it triggered) raised inside a
            # worker.  Propagate to the caller, like the synchronous drivers.
            raise errors[0]
        return report

    async def _worker(self, system: "WebdamLogSystem", name: str,
                      mailbox: asyncio.Queue,
                      errors: List[BaseException]) -> None:
        while True:
            token = await mailbox.get()
            try:
                if token is None:
                    return
                if name in system.peers:
                    try:
                        system.activate_peer(name, token)
                    except BaseException as exc:
                        # Keep the worker alive: a dead worker would leave
                        # its mailbox un-joinable and deadlock the cycle.
                        # The coordinator re-raises after the cycle joins.
                        errors.append(exc)
                await asyncio.sleep(0)
            finally:
                mailbox.task_done()

    @staticmethod
    async def _stop_workers(mailboxes: Dict[str, asyncio.Queue],
                            workers: List["asyncio.Task"]) -> None:
        for box in mailboxes.values():
            box.put_nowait(None)
        await asyncio.gather(*workers, return_exceptions=True)


#: Scheduler names accepted by :func:`resolve_scheduler` (and the builder's
#: ``.scheduler(...)`` call).
SCHEDULERS = {
    "lockstep": LockstepScheduler,
    "reactive": ReactiveScheduler,
    "async": AsyncScheduler,
}


def resolve_scheduler(spec: Union[None, str, Scheduler]) -> Scheduler:
    """Turn a scheduler spec (name, instance or ``None``) into a driver.

    ``None`` resolves to the default :class:`LockstepScheduler`; a string is
    looked up in :data:`SCHEDULERS`; anything else is assumed to implement
    the :class:`Scheduler` protocol and returned as-is.
    """
    if spec is None:
        return LockstepScheduler()
    if isinstance(spec, str):
        factory = SCHEDULERS.get(spec)
        if factory is None:
            raise ValueError(
                f"unknown scheduler {spec!r}; choose from {tuple(SCHEDULERS)}"
            )
        return factory()
    return spec
