"""Wire encoding of facts, rules and messages.

The in-memory network passes Python objects around directly, but the process
transport (and any real network transport) needs a serialisable encoding.
The encoding is plain JSON-compatible dictionaries; binary values (picture
contents) are hex-encoded.

The functions come in ``encode_*`` / ``decode_*`` pairs and round-trip every
object exactly (including term types: ``1`` and ``True`` stay distinct).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.acl.policies import Grant, Privilege
from repro.core.facts import Fact
from repro.core.rules import Atom, Rule
from repro.core.schema import RelationKind, RelationSchema
from repro.core.terms import Constant, Term, Variable
from repro.provenance.graph import Derivation
from repro.replication.dots import CausalContext, Op


# --------------------------------------------------------------------------- #
# values and terms
# --------------------------------------------------------------------------- #

def encode_value(value) -> Any:
    """Encode a constant value into a JSON-compatible representation."""
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, bool) or value is None or isinstance(value, (str, float)):
        return value
    if isinstance(value, int):
        return value
    raise TypeError(f"cannot encode value of type {type(value).__name__}")


def decode_value(encoded) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(encoded, dict) and "__bytes__" in encoded:
        return bytes.fromhex(encoded["__bytes__"])
    return encoded


def encode_term(term: Term) -> Dict[str, Any]:
    """Encode a term (constant or variable)."""
    if isinstance(term, Variable):
        return {"var": term.name}
    if isinstance(term, Constant):
        return {"const": encode_value(term.value),
                "type": type(term.value).__name__}
    raise TypeError(f"cannot encode term {term!r}")


def decode_term(encoded: Dict[str, Any]) -> Term:
    """Inverse of :func:`encode_term`."""
    if "var" in encoded:
        return Variable(encoded["var"])
    value = decode_value(encoded["const"])
    type_name = encoded.get("type")
    if type_name == "bool" and not isinstance(value, bool):
        value = bool(value)
    elif type_name == "int" and isinstance(value, bool):
        value = int(value)
    elif type_name == "float" and isinstance(value, int):
        value = float(value)
    return Constant(value)


# --------------------------------------------------------------------------- #
# facts, atoms, rules, schemas
# --------------------------------------------------------------------------- #

def encode_fact(fact: Fact) -> Dict[str, Any]:
    """Encode a fact."""
    return {
        "relation": fact.relation,
        "peer": fact.peer,
        "values": [encode_value(v) for v in fact.values],
        "types": [type(v).__name__ for v in fact.values],
    }


def decode_fact(encoded: Dict[str, Any]) -> Fact:
    """Inverse of :func:`encode_fact`."""
    values: List[Any] = []
    types = encoded.get("types", [])
    for index, raw in enumerate(encoded["values"]):
        value = decode_value(raw)
        type_name = types[index] if index < len(types) else None
        if type_name == "bool" and not isinstance(value, bool):
            value = bool(value)
        elif type_name == "int" and isinstance(value, bool):
            value = int(value)
        elif type_name == "float" and isinstance(value, int):
            value = float(value)
        values.append(value)
    return Fact(encoded["relation"], encoded["peer"], tuple(values))


def encode_atom(atom: Atom) -> Dict[str, Any]:
    """Encode an atom."""
    return {
        "relation": encode_term(atom.relation),
        "peer": encode_term(atom.peer),
        "args": [encode_term(a) for a in atom.args],
        "negated": atom.negated,
    }


def decode_atom(encoded: Dict[str, Any]) -> Atom:
    """Inverse of :func:`encode_atom`."""
    return Atom(
        relation=decode_term(encoded["relation"]),
        peer=decode_term(encoded["peer"]),
        args=tuple(decode_term(a) for a in encoded["args"]),
        negated=encoded.get("negated", False),
    )


def encode_rule(rule: Rule) -> Dict[str, Any]:
    """Encode a rule including its metadata."""
    return {
        "head": encode_atom(rule.head),
        "body": [encode_atom(a) for a in rule.body],
        "author": rule.author,
        "origin": rule.origin,
        "rule_id": rule.rule_id,
    }


def decode_rule(encoded: Dict[str, Any]) -> Rule:
    """Inverse of :func:`encode_rule`."""
    return Rule(
        head=decode_atom(encoded["head"]),
        body=tuple(decode_atom(a) for a in encoded["body"]),
        author=encoded.get("author"),
        origin=encoded.get("origin"),
        rule_id=encoded.get("rule_id") or "rule-wire",
    )


def encode_schema(schema: RelationSchema) -> Dict[str, Any]:
    """Encode a relation schema."""
    return {
        "name": schema.name,
        "peer": schema.peer,
        "columns": list(schema.columns),
        "kind": schema.kind.value,
        "persistent": schema.persistent,
        "key": list(schema.key),
    }


def decode_schema(encoded: Dict[str, Any]) -> RelationSchema:
    """Inverse of :func:`encode_schema`."""
    return RelationSchema(
        name=encoded["name"],
        peer=encoded["peer"],
        columns=tuple(encoded["columns"]),
        kind=RelationKind(encoded.get("kind", "extensional")),
        persistent=encoded.get("persistent", True),
        key=tuple(encoded.get("key", ())),
    )


# --------------------------------------------------------------------------- #
# provenance and policy payloads
# --------------------------------------------------------------------------- #

def encode_derivation(derivation: Derivation) -> Dict[str, Any]:
    """Encode a provenance :class:`~repro.provenance.graph.Derivation`.

    Peers running with provenance enabled attach derivations to their fact
    updates, so receivers (including process-backend workers) can answer
    why/lineage queries across peer boundaries.
    """
    return {
        "fact": encode_fact(derivation.fact),
        "rule_id": derivation.rule_id,
        "support": [encode_fact(f) for f in derivation.support],
        "author": derivation.author,
    }


def decode_derivation(encoded: Dict[str, Any]) -> Derivation:
    """Inverse of :func:`encode_derivation`."""
    return Derivation(
        fact=decode_fact(encoded["fact"]),
        rule_id=encoded["rule_id"],
        support=tuple(decode_fact(f) for f in encoded.get("support", [])),
        author=encoded.get("author"),
    )


# --------------------------------------------------------------------------- #
# replication payloads (dotted delta ops and causal contexts)
# --------------------------------------------------------------------------- #

def encode_op(op: Op) -> Dict[str, Any]:
    """Encode a replicated :class:`~repro.replication.dots.Op`.

    Only the fields meaningful for the op's kind are emitted, so envelopes
    stay compact on the wire (an insert op is a sequence number plus one
    fact; a delete op adds the removed dot numbers).
    """
    encoded: Dict[str, Any] = {"seq": op.seq, "kind": op.kind}
    if op.fact is not None:
        encoded["fact"] = encode_fact(op.fact)
    if op.removed:
        encoded["removed"] = list(op.removed)
    if op.delegation_id:
        encoded["delegation_id"] = op.delegation_id
    if op.rule is not None:
        encoded["rule"] = encode_rule(op.rule)
    if op.schemas:
        encoded["schemas"] = [encode_schema(s) for s in op.schemas]
    if op.derivation is not None:
        encoded["derivation"] = encode_derivation(op.derivation)
        encoded["anchor"] = op.anchor
    return encoded


def decode_op(encoded: Dict[str, Any]) -> Op:
    """Inverse of :func:`encode_op`."""
    fact = encoded.get("fact")
    rule = encoded.get("rule")
    derivation = encoded.get("derivation")
    return Op(
        seq=encoded["seq"],
        kind=encoded["kind"],
        fact=decode_fact(fact) if fact is not None else None,
        removed=tuple(encoded.get("removed", ())),
        delegation_id=encoded.get("delegation_id", ""),
        rule=decode_rule(rule) if rule is not None else None,
        schemas=tuple(decode_schema(s) for s in encoded.get("schemas", [])),
        derivation=decode_derivation(derivation) if derivation is not None else None,
        anchor=encoded.get("anchor", True),
    )


def encode_causal_context(context: CausalContext) -> Dict[str, Any]:
    """Encode a compact causal context (contiguous base + extras)."""
    return context.encode()


def decode_causal_context(encoded: Dict[str, Any]) -> CausalContext:
    """Inverse of :func:`encode_causal_context`."""
    return CausalContext.decode(encoded)


def encode_grant(grant: Grant) -> Dict[str, Any]:
    """Encode an access-control :class:`~repro.acl.policies.Grant`."""
    return {
        "relation": grant.relation,
        "grantee": grant.grantee,
        "privilege": grant.privilege.value,
        "grantor": grant.grantor,
    }


def decode_grant(encoded: Dict[str, Any]) -> Grant:
    """Inverse of :func:`encode_grant`."""
    return Grant(
        relation=encoded["relation"],
        grantee=encoded["grantee"],
        privilege=Privilege(encoded["privilege"]),
        grantor=encoded["grantor"],
    )
