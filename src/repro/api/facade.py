"""The runtime facades behind :func:`repro.api.system`.

:class:`System` wraps a :class:`~repro.runtime.system.WebdamLogSystem` and is
what :meth:`SystemBuilder.build() <repro.api.builder.SystemBuilder.build>`
returns: one object through which deployments are driven (runs), inspected
(queries, stats, totals) and observed (subscriptions).  :class:`PeerHandle`
is the per-peer slice of that surface.

:class:`ProcessSystem` is the same idea over the multiprocess backend
(:class:`~repro.runtime.processes.ProcessNetwork`): a reduced facade — no
wrappers, trust or subscriptions, since peer state lives in other OS
processes — that proves the builder's backend seam.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.acl.policies import AccessControlPolicy, PolicyEngine, PolicySet, Privilege
from repro.core.errors import SchemaError
from repro.core.facts import Fact
from repro.core.parser import parse_fact
from repro.core.rules import Rule
from repro.core.schema import RelationSchema, SchemaRegistry
from repro.provenance.graph import Explanation
from repro.runtime.inmemory import NetworkStats
from repro.runtime.peer import Peer, PeerStageReport
from repro.runtime.processes import ProcessNetwork
from repro.runtime.scheduler import LockstepScheduler, drive
from repro.runtime.system import RoundReport, RunSummary, WebdamLogSystem
from repro.runtime.transport import Transport
from repro.api.errors import ReproApiError
from repro.api.query import FactCallback, QueryHandle, Subscription
from repro.api.views import LiveView, QueryLike, compile_query, is_declarative


class PeerHandle:
    """The public face of one peer inside a built :class:`System`."""

    def __init__(self, system: "System", peer: Peer):
        self._system = system
        self._peer = peer

    @property
    def name(self) -> str:
        """The peer's name."""
        return self._peer.name

    def unwrap(self) -> Peer:
        """The underlying runtime :class:`~repro.runtime.peer.Peer`."""
        return self._peer

    # -- programs and rules -------------------------------------------- #

    def load_program(self, program: str):
        """Load a WebdamLog program text at this peer."""
        return self._peer.load_program(program)

    def add_rule(self, rule: Union[str, Rule]) -> Rule:
        """Add one rule to the peer's own program."""
        return self._peer.add_rule(rule)

    def replace_rule(self, rule_id: str, new_rule: Union[str, Rule]) -> Rule:
        """Replace one of the peer's own rules."""
        return self._peer.replace_rule(rule_id, new_rule)

    def rules(self) -> Tuple[Rule, ...]:
        """The peer's own rules."""
        return self._peer.rules()

    def declare(self, schema: RelationSchema) -> RelationSchema:
        """Declare a relation schema."""
        return self._peer.declare(schema)

    # -- facts ----------------------------------------------------------- #

    def insert(self, fact: Union[str, Fact]):
        """Insert a base fact (local) or queue a remote update."""
        return self._peer.insert_fact(fact)

    def insert_many(self, facts: Sequence[Union[str, Fact]]):
        """Insert many base facts at once (bulk-load fast path).

        Local facts hit the store through one batched write per relation
        (``executemany`` on SQL backends); remote facts are queued as
        individual updates, exactly as :meth:`insert` would.
        """
        return self._peer.insert_facts(facts)

    def delete(self, fact: Union[str, Fact]):
        """Delete a base fact (local) or queue a remote deletion."""
        return self._peer.delete_fact(fact)

    # Historical names, so a handle is a drop-in for a raw Peer.
    insert_fact = insert
    delete_fact = delete

    # -- reading --------------------------------------------------------- #

    def query(self, query: QueryLike, peer: Optional[str] = None,
              viewer: Optional[str] = None,
              name: Optional[str] = None) -> LiveView:
        """Ask a declarative query at this peer; returns a :class:`LiveView`.

        ``query`` is either a bare relation name (the degenerate one-literal
        case — the relation is read directly, nothing is installed) or a full
        Webdamlog query: a rule body with joins, negation, bound arguments
        and cross-peer ``relation@peer`` literals, or an explicit
        ``ans(...) :- body`` rule (optionally with ``count``/``sum``/``min``/
        ``max``/``avg`` head aggregates).  Declarative queries are compiled
        into an ephemeral intensional view installed into this peer's engine
        and incrementally maintained until :meth:`LiveView.close`.

        ``peer`` (single-relation form only) is the **location qualifier** of
        the relation — ``query("pictures", peer="bob")`` asks for
        ``pictures@bob`` *as visible at this peer*.  Facts of a relation
        located at another peer are never visible locally (they can only be
        reached through delegation), so a remote qualifier names what the
        relation is, not a remote fetch; an unknown qualifier raises
        :class:`~repro.api.errors.ReproApiError`.  ``viewer`` filters every
        read through the owner's access-control policy; ``name`` overrides
        the generated view-relation name.
        """
        if not is_declarative(query):
            return self._system._degenerate_view(
                self, query.strip(), location=peer, viewer=viewer)
        if peer is not None:
            raise ReproApiError(
                "peer= is the location qualifier of a single-relation query; "
                "a declarative query names its peers inline (rel@peer literals)"
            )
        return self._system._install_view(self, query, viewer=viewer, name=name)

    def facts(self, relation: str, peer: Optional[str] = None) -> Tuple[Fact, ...]:
        """Deprecated one-shot read: use ``query(relation).facts()``.

        .. deprecated::
           ``PeerHandle.facts`` predates :class:`LiveView`; the live handle
           returned by :meth:`query` answers one-shot reads *and* streaming,
           observation and ACL filtering through one object.
        """
        warnings.warn(
            "PeerHandle.facts() is deprecated; use query(relation).facts() "
            "(the LiveView handle) instead",
            DeprecationWarning, stacklevel=2,
        )
        return self.query(relation, peer=peer).facts()

    def subscribe(self, relation: str, callback: FactCallback,
                  on_remove: Optional[FactCallback] = None) -> Subscription:
        """Watch ``relation`` at this peer (see :meth:`System.subscribe`)."""
        return self._system.subscribe(relation, callback, peer=self._peer.name,
                                      on_remove=on_remove)

    # -- access control ---------------------------------------------------- #

    @property
    def access_policy(self) -> AccessControlPolicy:
        """This peer's discretionary access-control policy (see :mod:`repro.acl`)."""
        return self._system.access_policy(self._peer.name)

    def grant(self, relation: str, grantee: str,
              privilege: Union[str, Privilege] = Privilege.READ) -> "PeerHandle":
        """Grant a privilege on one of this peer's relations; returns ``self``.

        ``relation`` may be bare (qualified with this peer's name) or a full
        ``name@peer`` identifier.
        """
        if "@" not in relation:
            relation = f"{relation}@{self._peer.name}"
        if isinstance(privilege, str):
            privilege = Privilege(privilege.lower())
        self.access_policy.grant(relation, grantee, privilege)
        return self

    def declassify(self, view_relation: str, grantee: str = "*") -> "PeerHandle":
        """Declassify a derived relation (view) for ``grantee``; returns ``self``."""
        if "@" not in view_relation:
            view_relation = f"{view_relation}@{self._peer.name}"
        self.access_policy.declassify(view_relation, grantee)
        return self

    def explain(self, fact: Union[str, Fact]) -> Explanation:
        """Why/lineage story of ``fact`` (see :meth:`System.explain`)."""
        return self._system.explain(self._peer.name, fact)

    def snapshot(self) -> Dict[str, Tuple[Fact, ...]]:
        """Every non-empty relation visible at this peer."""
        return self._peer.engine.snapshot()

    def counts(self) -> Dict[str, int]:
        """Size counters of the peer."""
        return self._peer.counts()

    # -- trust and delegation control ------------------------------------ #

    def trust(self, peer: str) -> "PeerHandle":
        """Add ``peer`` to this peer's trusted set; returns ``self``."""
        self._peer.trust_peer(peer)
        return self

    def pending_delegations(self):
        """Delegations waiting for this user's approval."""
        return self._peer.pending_delegations()

    def approve_delegation(self, delegation_id: str):
        """Approve one pending delegation."""
        return self._peer.approve_delegation(delegation_id)

    def approve_all_delegations(self, delegator: Optional[str] = None):
        """Approve every pending delegation (optionally from one delegator)."""
        return self._peer.approve_all_delegations(delegator)

    def reject_delegation(self, delegation_id: str):
        """Reject one pending delegation."""
        return self._peer.reject_delegation(delegation_id)

    def installed_delegations(self):
        """Delegations installed at this peer."""
        return self._peer.installed_delegations()

    # -- wrappers --------------------------------------------------------- #

    def attach_wrapper(self, wrapper) -> "PeerHandle":
        """Attach a wrapper (simulated external service); returns ``self``."""
        self._peer.attach_wrapper(wrapper)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PeerHandle({self._peer.name!r})"


class System:
    """A built WebdamLog deployment: peers + transport + observation hooks.

    Constructed by :meth:`SystemBuilder.build()
    <repro.api.builder.SystemBuilder.build>`; wraps (and exposes, as
    :attr:`runtime`) a :class:`~repro.runtime.system.WebdamLogSystem`.
    """

    def __init__(self, runtime: WebdamLogSystem):
        self.runtime = runtime
        self._handles: Dict[str, PeerHandle] = {}
        self._subscriptions: List[Subscription] = []
        #: Per-owner access-control policies and cached decision engines,
        #: used by ``query(..., viewer=...)`` / :class:`LiveView` filtering.
        self.policies = PolicySet(self._tracker_of)
        self._views: List[LiveView] = []
        self._view_counter = 0
        runtime.add_stage_observer(self._on_stage)

    def _tracker_of(self, owner: str):
        peer = self.runtime.peers.get(owner)
        return None if peer is None else peer.engine.provenance

    # -- topology --------------------------------------------------------- #

    def add_peer(self, name: str, program: Optional[str] = None,
                 trusted: Sequence[str] = (), trust_all: bool = False,
                 auto_accept_delegations: Optional[bool] = None,
                 announce: bool = False,
                 schemas: Optional[SchemaRegistry] = None) -> PeerHandle:
        """Create and register a new peer at run time; returns its handle."""
        peer = self.runtime.add_peer(
            name, program=program, trusted=trusted, trust_all=trust_all,
            auto_accept_delegations=auto_accept_delegations, announce=announce,
            schemas=schemas,
        )
        handle = PeerHandle(self, peer)
        self._handles[name] = handle
        return handle

    def remove_peer(self, name: str) -> Optional[Peer]:
        """Remove a peer, detaching everything the facade attached to it.

        Beyond dropping the runtime peer and its transport registration
        (undelivered messages to it are dropped), removal closes the live
        views hosted at the peer (uninstalling their compiled rules while
        the engine still exists), cancels the subscriptions scoped to it,
        and forgets its handle — so a departed peer leaves no observer or
        view residue that would fire on a name later reused.
        """
        for view in tuple(self._views):
            if view.owner == name:
                # settle=False: the peer is leaving, driving the deployment
                # to fixpoint on its behalf is the caller's decision.
                view.close(settle=False)
        for subscription in tuple(self._subscriptions):
            if subscription.peer == name:
                subscription.cancel()
                self._drop_subscription(subscription)
        self._handles.pop(name, None)
        return self.runtime.remove_peer(name)

    def peer(self, name: str) -> PeerHandle:
        """The handle of one peer."""
        if name not in self._handles:
            self._handles[name] = PeerHandle(self, self.runtime.peer(name))
        return self._handles[name]

    def peer_names(self) -> Tuple[str, ...]:
        """Sorted names of the registered peers."""
        return self.runtime.peer_names()

    def __contains__(self, name: str) -> bool:
        return name in self.runtime

    def __len__(self) -> int:
        return len(self.runtime)

    # -- execution --------------------------------------------------------- #

    def converge(self, max_steps: Optional[int] = None,
                 extra_rounds: int = 0,
                 quiet_period: Optional[int] = None) -> RunSummary:
        """Drive the deployment to a fixpoint with its configured scheduler.

        This is the primary execution verb: under the default lockstep
        scheduler it is exactly the historical round loop; under the
        reactive or async schedulers only peers with pending work run
        stages.  Pending ``include_existing`` subscription deliveries are
        flushed before execution resumes.  On a networked transport the
        fixpoint requires the transport's ``convergence_quiet_period`` of
        consecutive quiet cycles (override per call with ``quiet_period``).
        """
        self._flush_subscription_backlogs()
        return self.runtime.converge(max_steps=max_steps, extra_rounds=extra_rounds,
                                     quiet_period=quiet_period)

    def step(self) -> RoundReport:
        """Execute one scheduling cycle of the configured scheduler."""
        self._flush_subscription_backlogs()
        return self.runtime.step()

    async def aconverge(self, max_steps: Optional[int] = None,
                        extra_rounds: int = 0,
                        quiet_period: Optional[int] = None) -> RunSummary:
        """Asynchronously drive the deployment to a fixpoint (asyncio driver)."""
        self._flush_subscription_backlogs()
        return await self.runtime.aconverge(max_steps=max_steps,
                                            extra_rounds=extra_rounds,
                                            quiet_period=quiet_period)

    def run(self, max_rounds: int = 100, extra_rounds: int = 0) -> RunSummary:
        """Alias of :meth:`converge` (historical name and signature)."""
        return self.converge(max_steps=max_rounds, extra_rounds=extra_rounds)

    def run_round(self) -> RoundReport:
        """Execute exactly one lockstep round (every peer runs one stage).

        Prefer :meth:`step`, which respects the configured scheduler; this
        method always drives a full lockstep round, matching its historical
        contract.
        """
        self._flush_subscription_backlogs()
        return LockstepScheduler().step(self.runtime)

    def run_rounds(self, count: int) -> List[RoundReport]:
        """Execute ``count`` lockstep rounds unconditionally (see :meth:`run_round`)."""
        return [self.run_round() for _ in range(count)]

    @property
    def current_round(self) -> int:
        """Number of scheduling cycles executed so far."""
        return self.runtime.current_round

    # -- reading ----------------------------------------------------------- #

    def query(self, at: str, query: QueryLike, peer: Optional[str] = None,
              viewer: Optional[str] = None,
              name: Optional[str] = None) -> LiveView:
        """Ask a declarative query at peer ``at``; returns a :class:`LiveView`.

        ``at`` is the peer the question is asked at (the view's owner);
        ``peer`` is the *location qualifier* of a single-relation query —
        ``query("alice", "pictures", peer="bob")`` reads ``pictures@bob`` as
        visible at ``alice``.  See :meth:`PeerHandle.query` for the accepted
        query shapes.  An unknown ``at`` (or qualifier) raises
        :class:`~repro.api.errors.ReproApiError` rather than ``KeyError``.
        """
        if at not in self.runtime.peers:
            raise ReproApiError(
                f"cannot query at unknown peer {at!r}; registered peers: "
                f"{', '.join(self.runtime.peer_names()) or '(none)'}"
            )
        return self.peer(at).query(query, peer=peer, viewer=viewer, name=name)

    # -- live-view plumbing (used by PeerHandle.query) ---------------------- #

    def _next_view_name(self) -> str:
        self._view_counter += 1
        return f"_view{self._view_counter}"

    def _degenerate_view(self, handle: PeerHandle, relation: str,
                         location: Optional[str],
                         viewer: Optional[str]) -> LiveView:
        owner = handle.name
        if location is not None and location != owner \
                and location not in self.runtime.peers:
            raise ReproApiError(
                f"cannot query {relation}@{location}: unknown peer "
                f"{location!r} (peer= is the location qualifier of the "
                "relation, not a remote fetch)"
            )
        view = LiveView(self, owner, relation, location=location, viewer=viewer)
        self._views.append(view)
        return view

    def _install_view(self, handle: PeerHandle, query: QueryLike,
                      viewer: Optional[str], name: Optional[str]) -> LiveView:
        owner = handle.name
        peer = self.runtime.peer(owner)
        compiled = compile_query(
            query, owner=owner, view_name=name or self._next_view_name(),
            planner_mode=getattr(peer.engine, "planner_mode", "off"))
        try:
            peer.declare(compiled.schema)
            for schema in compiled.extra_schemas:
                peer.declare(schema)
        except SchemaError as exc:
            raise ReproApiError(
                f"cannot install view {compiled.view_name!r} at {owner}: {exc}"
            ) from exc
        for rule in compiled.rules:
            peer.add_rule(rule)
        for fact in compiled.anchor_facts:
            peer.insert_fact(fact)
        view = LiveView(self, owner, compiled.view_name, compiled=compiled,
                        viewer=viewer)
        self._views.append(view)
        return view

    def _forget_view(self, view: LiveView) -> None:
        try:
            self._views.remove(view)
        except ValueError:
            pass

    def open_views(self) -> Tuple[LiveView, ...]:
        """The live views currently open (compiled and degenerate alike)."""
        return tuple(self._views)

    # -- access control ------------------------------------------------------ #

    def access_policy(self, owner: str) -> AccessControlPolicy:
        """The access-control policy governing relations owned by ``owner``."""
        return self.policies.policy(owner)

    def policy_engine(self, owner: str) -> PolicyEngine:
        """The cached decision engine over ``owner``'s policy and provenance."""
        return self.policies.engine(owner)

    def subscribe(self, relation: str, callback: FactCallback,
                  peer: Optional[str] = None,
                  include_existing: bool = False,
                  on_remove: Optional[FactCallback] = None) -> Subscription:
        """Fire ``callback(fact)`` once for each fact appearing in ``relation``.

        ``peer`` restricts the watch to one hosting peer (default: every
        peer).  Facts already visible at subscription time are skipped unless
        ``include_existing=True`` — in which case they are queued and fire
        when execution resumes.  Deliveries are **delta-driven**: the
        callback fires as soon as the stage that made a fact visible
        completes, fed from that stage's
        :attr:`~repro.core.engine.StageResult.visible_delta` — never from a
        relation re-scan.  ``on_remove`` (optional) fires once per reported
        fact that stops being visible.
        """
        subscription = Subscription(relation, callback, peer=peer,
                                    on_remove=on_remove)
        if include_existing:
            subscription.enqueue_existing(self.runtime.peers)
        else:
            subscription.prime(self.runtime.peers)
        subscription._detach = self._drop_subscription
        self._subscriptions.append(subscription)
        return subscription

    def explain(self, at: str, fact: Union[str, Fact]) -> Explanation:
        """Why/lineage story of ``fact`` as known at peer ``at``.

        Requires the deployment to have been built with
        ``system().provenance()``.  Returns an
        :class:`~repro.provenance.graph.Explanation` — the alternative
        immediate supports (*why*), the transitive lineage down to base
        facts, the base relations the lineage draws from (the input of the
        access-control view policy) and every peer that contributed.
        Derivations received from remote peers are included, so lineage
        crosses peer boundaries.
        """
        if isinstance(fact, str):
            fact = parse_fact(fact, default_peer=at)
        return self.runtime.peer(at).explain(fact)

    def unsubscribe(self, subscription: Subscription) -> None:
        """Cancel and forget a subscription (idempotent)."""
        subscription.cancel()
        self._drop_subscription(subscription)

    def _drop_subscription(self, subscription: Subscription) -> None:
        try:
            self._subscriptions.remove(subscription)
        except ValueError:
            pass

    def _on_stage(self, name: str, report: PeerStageReport) -> None:
        """Stage observer: push the stage's visible delta to the subscriptions."""
        delta = report.stage_result.visible_delta
        for subscription in tuple(self._subscriptions):
            if not subscription.active:
                self._drop_subscription(subscription)
                continue
            subscription.notify_stage(name, delta)

    def _flush_subscription_backlogs(self) -> None:
        for subscription in tuple(self._subscriptions):
            subscription.flush_backlog()

    def stream_facts(self, at: str, relation: str,
                     max_steps: Optional[int] = None) -> Iterator[Fact]:
        """Stream ``relation`` at peer ``at`` while driving the system to fixpoint.

        Yields the facts already visible, then steps the configured scheduler
        and yields each fact as the stage that derived it completes, until
        the system converges (or ``max_steps`` cycles ran).  This is the
        engine behind :meth:`QueryHandle.iter_facts`.
        """
        buffer: deque = deque()
        subscription = self.subscribe(relation, buffer.append, peer=at,
                                      include_existing=True)
        try:
            subscription.flush_backlog()
            while buffer:
                yield buffer.popleft()
            for _ in drive(self.runtime, max_steps=max_steps):
                while buffer:
                    yield buffer.popleft()
        finally:
            self.unsubscribe(subscription)

    # -- transport and reporting ------------------------------------------- #

    @property
    def transport(self) -> Transport:
        """The transport the deployment runs over."""
        return self.runtime.transport

    @property
    def stats(self) -> NetworkStats:
        """The transport's accumulated counters."""
        return self.runtime.transport.stats

    def reset_stats(self) -> NetworkStats:
        """Return the transport counters so far and start fresh ones."""
        return self.runtime.transport.reset_stats()

    def totals(self) -> Dict[str, int]:
        """System-wide counters: rounds, messages, facts, delegations."""
        return self.runtime.totals()

    def snapshot(self) -> Dict[str, Dict[str, Tuple[Fact, ...]]]:
        """Per-peer snapshot of every visible relation."""
        return self.runtime.snapshot()

    # -- lifecycle ---------------------------------------------------------- #

    def close(self) -> None:
        """Tear the deployment down; idempotent.

        Closes every open live view (without settling), cancels every
        subscription, detaches the facade's stage observer, commits and
        releases every peer's storage backend, and — when the transport owns
        external resources (the TCP transport's sockets and event loop) —
        closes the transport.  A deployment built on the in-memory transport
        and memory storage works without ever calling ``close``; a durable
        (``storage("sqlite", path=...)``) or networked one should use the
        context-manager form::

            with system().transport("tcp").build() as deployment:
                ...
        """
        for view in tuple(self._views):
            view.close(settle=False)
        for subscription in tuple(self._subscriptions):
            subscription.cancel()
        self._subscriptions.clear()
        self.runtime.remove_stage_observer(self._on_stage)
        self.runtime.close()
        transport_close = getattr(self.runtime.transport, "close", None)
        if callable(transport_close):
            transport_close()

    def __enter__(self) -> "System":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"System({len(self.runtime)} peers, "
                f"round {self.runtime.current_round}, "
                f"scheduler {self.runtime.scheduler.name}, "
                f"transport {type(self.runtime.transport).__name__})")


class ProcessSystem:
    """A deployment whose peers run as separate OS processes.

    Built by ``system().backend("processes")...build()``.  The facade is
    narrower than :class:`System` — peer state lives in worker processes, so
    only program loading, fact insertion, queries and counters are available.
    Use as a context manager (or call :meth:`close`) so the workers are
    always terminated.
    """

    def __init__(self, network: ProcessNetwork):
        self.network = network

    def __enter__(self) -> "ProcessSystem":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Terminate every peer process."""
        self.network.shutdown()

    # -- topology ---------------------------------------------------------- #

    def add_peer(self, name: str, program: Optional[str] = None) -> None:
        """Spawn one more peer process (optionally loading a program)."""
        self.network.spawn_peer(name, program)

    def peer_names(self) -> Tuple[str, ...]:
        """Names of the spawned peers, sorted."""
        return self.network.peer_names()

    # -- actions ------------------------------------------------------------ #

    def load_program(self, peer: str, text: str) -> None:
        """Load a program text at one peer process."""
        self.network.load_program(peer, text)

    def insert(self, peer: str, fact: Fact) -> None:
        """Insert a fact at one peer process."""
        self.network.insert_fact(peer, fact)

    def run(self, max_rounds: int = 50) -> int:
        """Run rounds until every process is quiescent; returns the round count."""
        return self.network.run_until_quiescent(max_rounds=max_rounds)

    def converge(self, max_steps: Optional[int] = None) -> int:
        """Scheduler-API name for :meth:`run` (same verb as :class:`System`)."""
        return self.run(max_rounds=50 if max_steps is None else max_steps)

    # -- reading ------------------------------------------------------------ #

    def query(self, at: str, relation: str, peer: Optional[str] = None) -> QueryHandle:
        """A handle over ``relation`` as computed in peer ``at``'s process.

        Only the single-relation form is available here: compiling a
        declarative query installs rules into a live engine, which lives in
        another OS process on this backend.
        """
        if is_declarative(relation):
            raise ReproApiError(
                "declarative queries (rule bodies, ans :- body) require the "
                "in-memory backend; the processes backend only reads single "
                "relations"
            )
        return QueryHandle(
            source=lambda: tuple(self.network.query(at, relation, peer)),
            description=f"{relation}@{peer or at} in process {at}",
        )

    def counts(self, peer: str) -> Dict[str, int]:
        """Counters of one peer process."""
        return self.network.counts(peer)

    def explain(self, at: str, fact: Union[str, Fact]) -> Explanation:
        """Why/lineage story of ``fact`` as recorded in peer ``at``'s process.

        Requires ``system().provenance().backend("processes")``.  Derivations
        are shipped between the worker processes on the wire encoding, so the
        lineage crosses process boundaries.  Returns the same
        :class:`~repro.provenance.graph.Explanation` as :meth:`System.explain`,
        so code written against one backend runs on the other.
        """
        if isinstance(fact, str):
            fact = parse_fact(fact, default_peer=at)
        decoded = self.network.explain(at, fact)
        return Explanation(
            fact=fact,
            derived=decoded["derived"],
            why=tuple(decoded["why"]),
            lineage=decoded["lineage"],
            base_relations=decoded["base_relations"],
            peers=decoded["peers"],
        )

    @property
    def messages_routed(self) -> int:
        """Messages routed between the peer processes so far."""
        return self.network.messages_routed
