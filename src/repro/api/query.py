"""Reading results out of a running system: query handles and subscriptions.

Scenarios, benchmarks and tests used to reach into ``peer.engine.state`` to
see what a peer derived.  The two classes here replace that:

* :class:`QueryHandle` — a re-runnable, lazily evaluated view over one
  relation at one peer.  Every read reflects the current state of the system,
  so a handle created before a run can be read after it.  Handles attached
  to a live :class:`~repro.api.facade.System` additionally support
  :meth:`QueryHandle.iter_facts` — a **streaming** iterator that drives the
  system's scheduler step by step and yields each fact as the stage that
  derived it completes.  :class:`~repro.api.views.LiveView` — what
  ``System.query`` / ``PeerHandle.query`` return since the declarative query
  API — subclasses it, adding compiled-view maintenance, ``on_change``
  observation, ACL filtering and the ``close()`` lifecycle.
* :class:`Subscription` — a callback fired **exactly once per fact** that
  becomes visible in a watched relation.  Subscriptions are **delta-driven**:
  the :class:`~repro.api.facade.System` facade feeds them the
  :attr:`~repro.core.engine.StageResult.visible_delta` of every completed
  stage (through the orchestrator's stage-observer hook), so a callback costs
  O(changes) per stage instead of an O(total facts) relation re-scan per
  round, and fires as soon as the deriving stage completes rather than at
  the next round boundary.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.core.facts import Delta, Fact

#: Signature of a subscription callback: it receives each newly visible fact.
FactCallback = Callable[[Fact], None]


class QueryHandle:
    """A lazily evaluated view over the facts of one relation.

    The handle holds no data itself; every access re-reads the peer, so the
    same handle can be consulted before and after runs.
    """

    def __init__(self, source: Callable[[], Tuple[Fact, ...]], description: str,
                 stream: Optional[Callable[[], Iterator[Fact]]] = None):
        self._source = source
        self._stream = stream
        self.description = description

    def facts(self) -> Tuple[Fact, ...]:
        """The facts currently visible, in the peer's storage order."""
        return tuple(self._source())

    def rows(self) -> Tuple[Tuple, ...]:
        """The value tuples of the visible facts (relation/peer stripped)."""
        return tuple(fact.values for fact in self.facts())

    def sorted(self) -> Tuple[Fact, ...]:
        """The visible facts in a deterministic (string) order."""
        return tuple(sorted(self.facts(), key=str))

    def first(self) -> Optional[Fact]:
        """The first visible fact, or ``None`` when the relation is empty."""
        facts = self.facts()
        return facts[0] if facts else None

    def plan(self) -> Optional[Dict[str, object]]:
        """The query plan behind this handle, for observability.

        Plain relation handles have no plan (the read is a direct relation
        scan), so the base implementation returns ``None``.
        :class:`~repro.api.views.LiveView` overrides this with the compiled
        view's plan: the planner mode, the installed rules, the magic/demand
        relations the demand transformation added, and the per-rule literal
        orders (with estimated vs. actual cardinalities) the cost-based
        planner chose.  See ``docs/planner.md``.
        """
        return None

    def iter_facts(self) -> Iterator[Fact]:
        """Stream the relation: yield facts while driving the system to fixpoint.

        On a handle attached to a live system this iterates the facts already
        visible, then **steps the system's scheduler** and yields each new
        fact as the stage that made it visible completes — interleaving
        consumption with execution, the way a client tails a live feed.  On a
        detached handle (e.g. over the process backend) it degrades to a plain
        iteration of the currently visible facts.
        """
        if self._stream is None:
            return iter(self.facts())
        return self._stream()

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.facts())

    def __len__(self) -> int:
        return len(self.facts())

    def __bool__(self) -> bool:
        return bool(self.facts())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryHandle({self.description}, {len(self)} facts)"


class Subscription:
    """A callback over the facts appearing in one relation.

    The subscription remembers which facts it has already reported (per
    hosting peer), so each fact fires the callback exactly once — even across
    multiple runs — until it is retracted; a fact that is retracted and later
    re-derived fires again, mirroring the visible change.

    Deliveries are driven by stage deltas (:meth:`on_delta`): the facade
    pushes every completed stage's visible delta to the active subscriptions.
    Facts that were already visible at subscription time are either marked
    seen (:meth:`prime`, the default) or queued for delivery
    (:meth:`enqueue_existing`, for ``include_existing=True``).

    ``on_remove`` (optional) is the retraction-side callback: it fires when a
    fact previously reported (or primed as visible) stops being visible —
    this is what feeds :meth:`repro.api.views.LiveView.on_change` removal
    notifications.  A fact that is later re-derived fires ``callback`` again.
    """

    def __init__(self, relation: str, callback: FactCallback,
                 peer: Optional[str] = None,
                 on_remove: Optional[FactCallback] = None):
        self.relation = relation
        self.callback = callback
        self.on_remove = on_remove  # fired when a reported fact is retracted
        self.peer = peer  # None: watch the relation at every peer
        self.active = True
        self.delivered = 0
        self.removals = 0
        self._seen: Dict[str, Set[Fact]] = {}
        self._backlog: Dict[str, List[Fact]] = {}
        # Set by the owning System so cancel() detaches itself; cleared on
        # the first cancellation, making repeated cancels (or cancels after
        # the deployment dropped the subscription) harmless no-ops.
        self._detach: Optional[Callable[["Subscription"], None]] = None

    def cancel(self) -> None:
        """Stop firing.  Idempotent: cancelling an already-cancelled (or
        already-detached) subscription is a no-op, never an error."""
        self.active = False
        self._backlog.clear()
        detach, self._detach = self._detach, None
        if detach is not None:
            try:
                detach(self)
            except Exception:  # pragma: no cover - defensive (torn-down system)
                pass

    # ------------------------------------------------------------------ #
    # initial visibility
    # ------------------------------------------------------------------ #

    def prime(self, peers: Dict[str, "object"]) -> None:
        """Mark every currently visible fact as already seen (no firing)."""
        for name, peer in self._targets(peers):
            self._seen[name] = set(peer.query(self.relation))

    def enqueue_existing(self, peers: Dict[str, "object"]) -> None:
        """Queue every currently visible fact for delivery (``include_existing``).

        The queued facts fire when the backlog is flushed — at the host
        peer's next completed stage, or when the facade resumes execution.
        """
        for name, peer in self._targets(peers):
            facts = sorted(peer.query(self.relation), key=str)
            if facts:
                self._backlog.setdefault(name, []).extend(facts)

    def flush_backlog(self, host: Optional[str] = None) -> int:
        """Deliver queued existing facts (for ``host``, or every host)."""
        if not self.active:
            self._backlog.clear()
            return 0
        hosts = [host] if host is not None else list(self._backlog)
        fired = 0
        for name in hosts:
            for fact in self._backlog.pop(name, ()):
                fired += self._fire(name, fact)
        self.delivered += fired
        return fired

    # ------------------------------------------------------------------ #
    # delta-driven delivery
    # ------------------------------------------------------------------ #

    def on_delta(self, host: str, delta: Delta) -> int:
        """Process the visible delta of one completed stage at ``host``.

        Insertions of the watched relation fire the callback (once per fact);
        deletions clear the fact from the seen set, so a later re-derivation
        fires again.  Returns the number of callbacks fired.
        """
        if not self.active or (self.peer is not None and host != self.peer):
            return 0
        flushed = self.flush_backlog(host)
        fired = 0
        for fact in sorted(delta.inserted, key=str):
            if fact.relation == self.relation and fact.peer == host:
                fired += self._fire(host, fact)
        for fact in sorted(delta.deleted, key=str):
            if fact.relation != self.relation:
                continue
            seen = self._seen.get(host)
            was_seen = seen is not None and fact in seen
            if was_seen:
                seen.discard(fact)
            if (was_seen and self.on_remove is not None
                    and fact.peer == host and self.active):
                self.on_remove(fact)
                self.removals += 1
        self.delivered += fired
        return flushed + fired

    def notify_stage(self, host: str, delta: Delta) -> int:
        """Facade entry point: backlog flush + delta processing for one stage."""
        if not self.active:
            return 0
        if self.peer is not None and host != self.peer:
            return 0
        if not delta and not self._backlog:
            return 0
        return self.on_delta(host, delta)

    # ------------------------------------------------------------------ #
    # legacy polling (pre-delta API, kept for external callers)
    # ------------------------------------------------------------------ #

    def poll(self, peers: Dict[str, "object"]) -> int:
        """Snapshot-diff delivery: fire for facts that became visible.

        Deprecated in favour of :meth:`on_delta`; retained so external code
        that polled subscriptions by hand keeps working.
        """
        if not self.active:
            return 0
        fired = 0
        for name, peer in self._targets(peers):
            current = set(peer.query(self.relation))
            seen = self._seen.get(name, set())
            for fact in sorted(current - seen, key=str):
                self.callback(fact)
                fired += 1
            self._seen[name] = current
        self.delivered += fired
        return fired

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _fire(self, host: str, fact: Fact) -> int:
        seen = self._seen.setdefault(host, set())
        if fact in seen:
            return 0
        seen.add(fact)
        self.callback(fact)
        return 1

    def _targets(self, peers: Dict[str, "object"]) -> List[Tuple[str, "object"]]:
        if self.peer is not None:
            peer = peers.get(self.peer)
            return [(self.peer, peer)] if peer is not None else []
        return sorted(peers.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = self.peer or "*"
        return (f"Subscription({self.relation}@{scope}, "
                f"delivered={self.delivered}, active={self.active})")
