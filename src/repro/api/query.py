"""Reading results out of a running system: query handles and subscriptions.

Scenarios, benchmarks and tests used to reach into ``peer.engine.state`` to
see what a peer derived.  The two classes here replace that:

* :class:`QueryHandle` — a re-runnable, lazily evaluated view over one
  relation at one peer.  Every read reflects the current state of the system,
  so a handle created before a run can be read after it.
* :class:`Subscription` — a callback fired **exactly once per fact** that
  becomes visible in a watched relation.  Subscriptions are polled at round
  boundaries by the :class:`~repro.api.facade.System` facade (through the
  orchestrator's round-observer hook), so they see precisely what the
  round-based semantics of the paper make observable — no engine internals
  involved.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.core.facts import Fact

#: Signature of a subscription callback: it receives each newly visible fact.
FactCallback = Callable[[Fact], None]


class QueryHandle:
    """A lazily evaluated view over the facts of one relation.

    The handle holds no data itself; every access re-reads the peer, so the
    same handle can be consulted before and after runs.
    """

    def __init__(self, source: Callable[[], Tuple[Fact, ...]], description: str):
        self._source = source
        self.description = description

    def facts(self) -> Tuple[Fact, ...]:
        """The facts currently visible, in the peer's storage order."""
        return tuple(self._source())

    def rows(self) -> Tuple[Tuple, ...]:
        """The value tuples of the visible facts (relation/peer stripped)."""
        return tuple(fact.values for fact in self.facts())

    def sorted(self) -> Tuple[Fact, ...]:
        """The visible facts in a deterministic (string) order."""
        return tuple(sorted(self.facts(), key=str))

    def first(self) -> Optional[Fact]:
        """The first visible fact, or ``None`` when the relation is empty."""
        facts = self.facts()
        return facts[0] if facts else None

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.facts())

    def __len__(self) -> int:
        return len(self.facts())

    def __bool__(self) -> bool:
        return bool(self.facts())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryHandle({self.description}, {len(self)} facts)"


class Subscription:
    """A callback over the facts appearing in one relation.

    The subscription remembers which facts it has already reported (per
    hosting peer), so each fact fires the callback exactly once — even across
    multiple runs — until it is retracted; a fact that is retracted and later
    re-derived fires again, mirroring the visible change.
    """

    def __init__(self, relation: str, callback: FactCallback,
                 peer: Optional[str] = None):
        self.relation = relation
        self.callback = callback
        self.peer = peer  # None: watch the relation at every peer
        self.active = True
        self.delivered = 0
        self._seen: Dict[str, Set[Fact]] = {}

    def cancel(self) -> None:
        """Stop firing; the subscription can not be re-activated."""
        self.active = False

    def prime(self, peers: Dict[str, "object"]) -> None:
        """Mark every currently visible fact as already seen (no firing)."""
        for name, peer in self._targets(peers):
            self._seen[name] = set(peer.query(self.relation))

    def poll(self, peers: Dict[str, "object"]) -> int:
        """Fire the callback for facts that became visible; returns how many."""
        if not self.active:
            return 0
        fired = 0
        for name, peer in self._targets(peers):
            current = set(peer.query(self.relation))
            seen = self._seen.get(name, set())
            for fact in sorted(current - seen, key=str):
                self.callback(fact)
                fired += 1
            self._seen[name] = current
        self.delivered += fired
        return fired

    def _targets(self, peers: Dict[str, "object"]) -> List[Tuple[str, "object"]]:
        if self.peer is not None:
            peer = peers.get(self.peer)
            return [(self.peer, peer)] if peer is not None else []
        return sorted(peers.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = self.peer or "*"
        return (f"Subscription({self.relation}@{scope}, "
                f"delivered={self.delivered}, active={self.active})")
