"""Errors raised at the :mod:`repro.api` boundary.

The facade validates user input (query texts, peer names, view lifecycles)
before it reaches the runtime, and reports problems as
:class:`ReproApiError` — a :class:`~repro.core.errors.WebdamLogError`
subclass, so a single ``except WebdamLogError`` still catches everything the
library raises.
"""

from __future__ import annotations

from repro.core.errors import WebdamLogError


class ReproApiError(WebdamLogError):
    """A request to the :mod:`repro.api` facade was invalid.

    Raised for unknown peers in :meth:`repro.api.System.query` /
    :meth:`repro.api.PeerHandle.query`, malformed or unsafe declarative
    queries, operations on a closed :class:`~repro.api.views.LiveView`, and
    backend combinations the facade cannot serve.
    """
