"""Declarative queries compiled into incrementally-maintained live views.

The paper's demo is interactive: users pose ad-hoc *rule-shaped* questions
over a running peer network.  This module is the compilation pipeline behind
:meth:`repro.api.System.query` / :meth:`repro.api.PeerHandle.query`:

1. the query text (a rule body, or a full ``ans(...) :- body`` rule, possibly
   with aggregate head terms) is parsed by :func:`repro.core.parser.parse_query`;
2. :func:`compile_query` turns it into an **ephemeral intensional view
   relation** — a schema plus one rule whose head derives into it;
3. the facade installs the compiled rule into the owning peer's engine, where
   it is evaluated exactly like a user rule: cross-peer ``relation@peer``
   literals delegate to the remote peers, bound arguments are pushed down
   into the :class:`~repro.core.facts.FactStore` hash indexes, and churn is
   absorbed along the incremental ``delta``/``rederive`` paths;
4. the returned :class:`LiveView` reads, streams, observes, explains,
   ACL-filters and finally uninstalls the view.

A :class:`LiveView` is also what single-relation queries return — the
degenerate one-literal case installs nothing and reads the relation directly,
keeping the historical :class:`~repro.api.query.QueryHandle` behaviour.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.errors import ParseError, SafetyError
from repro.core.facts import Fact
from repro.core.parser import (
    ParsedQuery,
    ParsedQueryProgram,
    QueryAggregate,
    parse_query_program,
)
from repro.core.rules import Atom, Rule
from repro.core.schema import RelationKind, RelationSchema
from repro.core.terms import Term, Variable
from repro.datalog.aggregation import Aggregate, compute_aggregate
from repro.planner.magic import apply_magic
from repro.api.errors import ReproApiError
from repro.api.query import FactCallback, QueryHandle, Subscription

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.facade import System

#: A query as accepted by ``System.query`` / ``PeerHandle.query``: a text
#: (relation name, rule body, or full rule), a pre-built body atom, a
#: sequence of body atoms, a :class:`Rule`, or an already-parsed query.
QueryLike = Union[str, Atom, Sequence[Atom], Rule, ParsedQuery, ParsedQueryProgram]

_RELATION_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_\-]*$")

_ANONYMOUS_PREFIX = "_anon"


def is_declarative(query: QueryLike) -> bool:
    """``True`` when ``query`` needs compilation (anything but a bare name)."""
    if isinstance(query, str):
        return _RELATION_NAME_RE.match(query.strip()) is None
    return True


def _as_parsed_program(query: QueryLike, owner: str) -> ParsedQueryProgram:
    """Normalise any accepted query shape into a (possibly one-clause) program.

    Only query *text* can carry ``;``-separated auxiliary clauses; every
    pre-built shape (atoms, rules, parsed queries) is a one-clause program.
    """
    if isinstance(query, str):
        try:
            return parse_query_program(query, default_peer=owner)
        except ParseError as exc:
            raise ReproApiError(f"cannot parse query {query!r}: {exc}") from exc
    if isinstance(query, ParsedQueryProgram):
        return query
    if isinstance(query, ParsedQuery):
        return ParsedQueryProgram(clauses=(query,))
    if isinstance(query, Rule):
        name = query.head.relation_constant()
        return ParsedQueryProgram(clauses=(ParsedQuery(
            body=tuple(query.body), head_name=name or "ans",
            head_args=tuple(query.head.args)),))
    if isinstance(query, Atom):
        return ParsedQueryProgram(clauses=(ParsedQuery(
            body=(query.positive() if query.negated else query,)),))
    if isinstance(query, Sequence) and query and all(
            isinstance(item, Atom) for item in query):
        return ParsedQueryProgram(clauses=(ParsedQuery(body=tuple(query)),))
    raise ReproApiError(
        f"cannot interpret {query!r} as a query: expected a relation name, a "
        "rule body, a 'head :- body' rule, an Atom, a sequence of Atoms or a "
        "Rule"
    )


def _projected_variables(body: Sequence[Atom]) -> Tuple[Variable, ...]:
    """Non-anonymous variables of a body in order of first occurrence."""
    seen: List[Variable] = []
    for atom in body:
        for variable in atom.variables():
            if variable.name.startswith(_ANONYMOUS_PREFIX):
                continue
            if variable not in seen:
                seen.append(variable)
    return tuple(seen)


def _column_names(terms: Sequence[Term]) -> Tuple[str, ...]:
    names: List[str] = []
    used: Dict[str, int] = {}
    for index, term in enumerate(terms):
        base = term.name if isinstance(term, Variable) else f"c{index}"
        count = used.get(base, 0)
        used[base] = count + 1
        names.append(base if count == 0 else f"{base}_{count}")
    return tuple(names)


@dataclass(frozen=True)
class CompiledView:
    """The executable form of a declarative query at one owner peer.

    ``head_args`` describe the *answer* shape (aggregate positions hold the
    aggregated variable); ``rules`` derive the raw tuples into the view
    relation.  For aggregate queries the raw tuples carry, after the head
    columns, every remaining body variable as *support* columns — they keep
    one raw tuple per body substitution, so grouping on read aggregates with
    bag semantics over substitutions (the set semantics of the fact store
    still dedupes identical substitutions).
    """

    view_name: str
    owner: str
    schema: RelationSchema
    rules: Tuple[Rule, ...]
    head_args: Tuple[Term, ...]
    aggregates: Tuple[QueryAggregate, ...]
    query_text: str
    #: Schemas of view-scoped auxiliary relations (multi-clause queries) and
    #: of planner-generated magic/demand relations; declared on install.
    extra_schemas: Tuple[RelationSchema, ...] = ()
    #: Demand-anchor facts inserted on install and deleted on ``close()`` —
    #: their retraction erases every magic fact at the next fixpoint.
    anchor_facts: Tuple[Fact, ...] = ()
    #: Names of the magic predicates the planner installed (observability).
    magic_relations: Tuple[str, ...] = ()

    def is_aggregate(self) -> bool:
        """``True`` when reads must group-and-aggregate the raw tuples."""
        return bool(self.aggregates)

    def rule_ids(self) -> Tuple[str, ...]:
        """Identifiers of the installed rules (for uninstallation)."""
        return tuple(rule.rule_id for rule in self.rules)


def _scope_atom(atom: Atom, aux_map: Dict[str, str], owner: str) -> Atom:
    """Rename references to auxiliary relations to their view-scoped names."""
    name = atom.relation_constant()
    if name in aux_map and atom.peer_constant() == owner:
        return Atom(relation=aux_map[name], peer=atom.peer, args=atom.args,
                    negated=atom.negated)
    return atom


def compile_query(query: QueryLike, owner: str, view_name: str,
                  planner_mode: str = "off") -> CompiledView:
    """Compile a declarative query into a view schema plus view rules.

    The compiled answer rule's head derives into ``view_name@owner``
    (declared intensional); its body is the query body verbatim, so the
    engine evaluates it exactly like a user rule — joins and negation
    locally, ``relation@peer`` literals through delegation, bound arguments
    through the index probes.  Raises :class:`ReproApiError` on parse or
    safety problems (e.g. a head variable not bound by the body).

    A query *text* may carry several ``;``-separated clauses: every clause
    but the last defines a **view-scoped auxiliary relation**, renamed to
    ``{view_name}_{name}`` so concurrent views never collide, installed and
    uninstalled together with the answer rule.  With ``planner_mode="magic"``
    an answer clause that probes an auxiliary relation with constant
    arguments is rewritten by :func:`repro.planner.magic.apply_magic` so only
    demand-reachable auxiliary facts are ever derived.
    """
    program = _as_parsed_program(query, owner)
    parsed = program.answer
    if not parsed.body:
        raise ReproApiError("query has an empty body")

    aux_map: Dict[str, str] = {}
    for clause in program.auxiliary:
        aux_map.setdefault(clause.head_name, f"{view_name}_{clause.head_name}")

    extra_schemas: List[RelationSchema] = []
    aux_rules: List[Rule] = []
    declared: set = set()
    for clause in program.auxiliary:
        if not clause.body:
            raise ReproApiError("query clause has an empty body")
        scoped = aux_map[clause.head_name]
        rule = Rule(
            head=Atom(relation=scoped, peer=owner, args=tuple(clause.head_args)),
            body=tuple(_scope_atom(atom, aux_map, owner) for atom in clause.body),
            author=owner,
        )
        try:
            rule.check_safety()
        except SafetyError as exc:
            raise ReproApiError(f"unsafe query clause: {exc}") from exc
        aux_rules.append(rule)
        if scoped not in declared:
            declared.add(scoped)
            extra_schemas.append(RelationSchema(
                name=scoped, peer=owner,
                columns=_column_names(clause.head_args),
                kind=RelationKind.INTENSIONAL, persistent=True,
            ))

    if parsed.head_name is not None:
        head_args = tuple(parsed.head_args)
        aggregates = tuple(parsed.aggregates)
    else:
        head_args = _projected_variables(parsed.body)
        aggregates = ()

    raw_args: Tuple[Term, ...] = head_args
    if aggregates:
        support = tuple(v for v in _projected_variables(parsed.body)
                        if v not in head_args)
        raw_args = head_args + support

    schema = RelationSchema(
        name=view_name, peer=owner, columns=_column_names(raw_args),
        kind=RelationKind.INTENSIONAL, persistent=True,
    )
    answer_rule = Rule(
        head=Atom(relation=view_name, peer=owner, args=raw_args),
        body=tuple(_scope_atom(atom, aux_map, owner) for atom in parsed.body),
        author=owner,
    )
    try:
        answer_rule.check_safety()
    except SafetyError as exc:
        raise ReproApiError(f"unsafe query: {exc}") from exc

    rules: Tuple[Rule, ...] = tuple(aux_rules) + (answer_rule,)
    anchor_facts: Tuple[Fact, ...] = ()
    magic_relations: Tuple[str, ...] = ()
    if planner_mode == "magic" and aux_rules:
        rewrite = apply_magic(view_name, owner, answer_rule,
                              tuple(aux_rules), set(aux_map.values()))
        if rewrite is not None:
            rules = rewrite.rules
            extra_schemas.extend(rewrite.extra_schemas)
            anchor_facts = rewrite.anchor_facts
            magic_relations = rewrite.magic_relations

    return CompiledView(
        view_name=view_name, owner=owner, schema=schema, rules=rules,
        head_args=head_args, aggregates=aggregates,
        query_text=query if isinstance(query, str) else str(answer_rule),
        extra_schemas=tuple(extra_schemas), anchor_facts=anchor_facts,
        magic_relations=magic_relations,
    )


def _noop_callback(fact: Fact) -> None:
    return None


class LiveView(QueryHandle):
    """A standing, incrementally-maintained answer to a declarative query.

    The one handle unifying the three historical half-APIs:

    * **read** — :meth:`facts` / :meth:`rows` / iteration, always reflecting
      the current engine state (maintained along the delta/rederive paths,
      never by re-running the query);
    * **stream** — :meth:`iter_facts` drives the configured scheduler and
      yields answers as the deriving stages complete;
    * **observe** — :meth:`on_change` registers add/remove callbacks fed
      from each stage's :attr:`~repro.core.engine.StageResult.visible_delta`;
    * **explain** — :meth:`explain` answers why/lineage through the
      provenance index (``system().provenance()`` deployments);
    * **access control** — a ``viewer=`` peer filters every read, stream and
      callback through the owner's
      :meth:`~repro.acl.policies.PolicyEngine.filter_readable`;
    * **lifecycle** — :meth:`close` uninstalls the compiled rules, retracts
      the view's derived facts (including delegated remainders at remote
      peers) and cancels the view's subscriptions.  Also a context manager.
    """

    def __init__(self, system: "System", owner: str, relation: str,
                 location: Optional[str] = None,
                 compiled: Optional[CompiledView] = None,
                 viewer: Optional[str] = None,
                 description: Optional[str] = None):
        self._system = system
        self._owner = owner
        self.relation = relation
        self._location = location or owner
        self.compiled = compiled
        self.viewer = viewer
        self._closed = False
        self._subscriptions: List[Subscription] = []
        if description is None:
            description = (f"view {relation}@{owner}" if compiled is not None
                           else f"{relation}@{self._location} as seen by {owner}")
            if viewer is not None:
                description += f" for viewer {viewer}"
        super().__init__(source=self._read, description=description,
                         stream=None)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """The (view) relation name answers are published under."""
        return self.relation

    @property
    def owner(self) -> str:
        """The peer hosting the view."""
        return self._owner

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` ran."""
        return self._closed

    def raw_facts(self) -> Tuple[Fact, ...]:
        """The maintained raw tuples, before aggregation and ACL filtering.

        For non-aggregate views (after ACL filtering) this is exactly
        :meth:`facts`; for aggregate views these are the per-substitution
        support tuples the groups are computed from, and the facts
        :meth:`explain` can answer about.
        """
        if self._closed:
            return ()
        return self._system.runtime.peer(self._owner).query(
            self.relation, self._location)

    def _read(self) -> Tuple[Fact, ...]:
        if self._closed:
            return ()
        if (self.viewer is None and self.compiled is not None
                and self.compiled.is_aggregate()):
            # SQL-capable backends compute the grouping in-store (GROUP BY);
            # None means the backend could not guarantee bit-identical
            # results and the Python path below takes over.
            pushed = self._aggregate_pushdown()
            if pushed is not None:
                return pushed
        raw = self.raw_facts()
        if self.viewer is not None:
            raw = self._system.policies.filter_readable(self._owner, raw,
                                                        self.viewer)
        if self.compiled is not None and self.compiled.is_aggregate():
            return self._aggregate(raw)
        return tuple(raw)

    def facts(self) -> Tuple[Fact, ...]:
        """The current answers (ACL-filtered, aggregated where applicable)."""
        return self._read()

    def plan(self) -> Optional[Dict[str, object]]:
        """The plan behind this view: mode, rules, magic relations, orders.

        ``rule_plans`` holds the cost-based planner's cached
        :class:`~repro.planner.plans.RulePlan` for each of the view's
        installed rules (literal order, estimated vs. actual cardinalities);
        it is empty until a stage has evaluated the view's rules, and always
        empty under ``REPRO_PLANNER=off``.  Relation-scan views (no compiled
        query) return ``None`` like the base handle.
        """
        if self.compiled is None:
            return None
        engine = self._system.runtime.peer(self._owner).engine
        planner = getattr(engine, "_planner", None)
        rule_ids = {rule.rule_id for rule in self.compiled.rules}
        rule_plans = []
        if planner is not None:
            for key in sorted(planner._cache, key=str):
                entry = planner._cache[key]
                if entry is not None and entry[0].rule_id in rule_ids:
                    rule_plans.append(entry[0].as_dict())
        return {
            "planner_mode": getattr(engine, "planner_mode", "off"),
            "rules": tuple(str(rule) for rule in self.compiled.rules),
            "magic_relations": tuple(self.compiled.magic_relations),
            "rule_plans": tuple(rule_plans),
        }

    def _aggregate_pushdown(self) -> Optional[Tuple[Fact, ...]]:
        """Grouped aggregation executed inside the owner's storage backend."""
        compiled = self.compiled
        specs = {a.position: Aggregate.from_name(a.function)
                 for a in compiled.aggregates}
        width = len(compiled.head_args)
        group_positions = [i for i in range(width) if i not in specs]
        state = self._system.runtime.peer(self._owner).engine.state
        rows = state.aggregate_view(self.relation, self._location, width,
                                    group_positions, specs)
        if rows is None:
            return None
        return tuple(sorted(
            (Fact(self.relation, self._owner, tuple(values)) for values in rows),
            key=str))

    def _aggregate(self, raw: Sequence[Fact]) -> Tuple[Fact, ...]:
        compiled = self.compiled
        specs = {a.position: Aggregate.from_name(a.function)
                 for a in compiled.aggregates}
        width = len(compiled.head_args)
        group_positions = [i for i in range(width) if i not in specs]
        groups: Dict[Tuple, List[Tuple]] = {}
        for fact in raw:
            row = fact.values
            key = tuple(row[i] for i in group_positions)
            groups.setdefault(key, []).append(row)
        results: List[Fact] = []
        for key, rows in groups.items():
            values: List[object] = [None] * width
            for slot, index in enumerate(group_positions):
                values[index] = key[slot]
            for index, function in specs.items():
                values[index] = compute_aggregate(
                    function, [row[index] for row in rows])
            results.append(Fact(self.relation, self._owner, tuple(values)))
        return tuple(sorted(results, key=str))

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #

    def iter_facts(self, max_steps: Optional[int] = None) -> Iterator[Fact]:
        """Stream the answers while driving the configured scheduler.

        Yields the answers already visible, then steps the system and yields
        each new answer as the deriving stage completes, until convergence.
        Aggregate views converge first and then yield the grouped results
        (a per-stage aggregate stream would re-report groups on every raw
        change); views over a relation located at another peer degrade to a
        plain iteration, like the historical handle.
        """
        if self._closed:
            return iter(())
        if self.compiled is not None and self.compiled.is_aggregate():
            self._system.converge(max_steps=max_steps)
            return iter(self.facts())
        if self._location != self._owner:
            return iter(self.facts())
        stream = self._system.stream_facts(self._owner, self.relation,
                                           max_steps=max_steps)
        if self.viewer is None:
            return stream
        return self._filtered(stream)

    def _filtered(self, stream: Iterator[Fact]) -> Iterator[Fact]:
        engine = self._system.policies.engine(self._owner)
        for fact in stream:
            if engine.can_read_fact(fact, self.viewer):
                yield fact

    # ------------------------------------------------------------------ #
    # observation
    # ------------------------------------------------------------------ #

    def on_change(self, on_add: Optional[FactCallback] = None,
                  on_remove: Optional[FactCallback] = None,
                  include_existing: bool = False) -> Subscription:
        """Watch the view: ``on_add(fact)`` fires once per answer that becomes
        visible, ``on_remove(fact)`` once per answer that is retracted.

        Deliveries are fed from each completed stage's ``visible_delta`` —
        O(changes), no relation re-scans.  When the view has a ``viewer=``,
        additions are filtered through the owner's policy engine, and a
        removal is reported exactly when the addition was (the ACL decision
        is made at delivery time and remembered — a retracted fact has no
        lineage left to re-check, and the observer must end up with the same
        answer set either way).  The returned
        :class:`~repro.api.query.Subscription` is cancelled automatically by
        :meth:`close`.
        """
        if self._closed:
            raise ReproApiError(f"live view {self.description} is closed")
        add = on_add or _noop_callback
        remove = on_remove
        if self.viewer is not None:
            viewer = self.viewer
            policies = self._system.policies
            delivered: set = set()
            inner_add, inner_remove = add, on_remove

            def add(fact: Fact) -> None:
                if policies.engine(self._owner).can_read_fact(fact, viewer):
                    delivered.add(fact)
                    inner_add(fact)

            # `remove` is installed even without a user callback, so the
            # delivered-set stays in sync across retract-and-re-derive.
            def remove(fact: Fact) -> None:
                if fact in delivered:
                    delivered.discard(fact)
                    if inner_remove is not None:
                        inner_remove(fact)
        subscription = self._system.subscribe(
            self.relation, add, peer=self._owner,
            include_existing=include_existing, on_remove=remove)
        self._subscriptions.append(subscription)
        return subscription

    # ------------------------------------------------------------------ #
    # provenance
    # ------------------------------------------------------------------ #

    def explain(self, fact: Union[str, Fact]):
        """Why/lineage story of one answer (see :meth:`repro.api.System.explain`).

        For aggregate views, explain the *raw* tuples (:meth:`raw_facts`) —
        grouped results are computed on read and have no single derivation.
        """
        if self._closed:
            raise ReproApiError(f"live view {self.description} is closed")
        return self._system.explain(self._owner, fact)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self, settle: bool = True,
              max_steps: Optional[int] = None) -> None:
        """Tear the view down; idempotent.

        Uninstalls the compiled rules from the owning engine and cancels the
        view's subscriptions.  With ``settle=True`` (default) the system is
        then driven to convergence so every residue is retracted: the owner's
        recompute drops the view's derived facts, delegation diffs retract
        the remainders installed at remote peers, and those peers' updates
        withdraw the answers they had pushed.  Reads on a closed view return
        ``()``; :meth:`on_change` / :meth:`explain` raise
        :class:`~repro.api.errors.ReproApiError`.
        """
        if self._closed:
            return
        self._closed = True
        for subscription in self._subscriptions:
            subscription.cancel()
        self._subscriptions.clear()
        if self.compiled is not None:
            try:
                peer = self._system.runtime.peer(self._owner)
            except KeyError:
                peer = None
            if peer is not None:
                peer.remove_rules(self.compiled.rule_ids())
                for fact in self.compiled.anchor_facts:
                    # Retracting the demand anchor erases every magic fact at
                    # the next fixpoint — no planner residue survives close.
                    peer.delete_fact(fact)
                if settle:
                    self._system.converge(max_steps=max_steps)
        self._system._forget_view(self)

    def __enter__(self) -> "LiveView":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self)} facts"
        return f"LiveView({self.description}, {state})"
