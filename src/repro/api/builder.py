"""The fluent construction API: :func:`system` and :class:`SystemBuilder`.

One chain describes a whole deployment — peers, trust, wrappers, programs,
transport — and ``build()`` turns it into a running
:class:`~repro.api.facade.System`::

    from repro.api import system

    deployment = (
        system()
        .peer("alice").trusts("bob").program('''
            collection extensional persistent friends@alice(name);
            fact friends@alice("bob");
        ''')
        .peer("bob").wrapper(FacebookUserWrapper(service, "bob"))
        .build()
    )
    deployment.run()

Peer-scoped calls (``trusts``, ``wrapper``, ``program``, ``rule``, ``fact``,
``schema``…) apply to the most recently introduced peer; ``peer(name)``
starts the next one; ``build()`` may be called from anywhere in the chain.
``backend("processes")`` builds the same description onto the multiprocess
runtime instead (programs and facts only — the reduced
:class:`~repro.api.facade.ProcessSystem` facade).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.facts import Fact
from repro.core.rules import Rule
from repro.core.schema import RelationSchema
from repro.planner import PLANNER_MODES
from repro.replication import REPLICATION_MODES
from repro.runtime.inmemory import InMemoryTransport
from repro.runtime.processes import ProcessNetwork
from repro.runtime.scheduler import Scheduler, resolve_scheduler
from repro.runtime.system import WebdamLogSystem
from repro.runtime.transport import Transport
from repro.api.facade import PeerHandle, ProcessSystem, System

#: Backends ``build()`` knows how to assemble.
BACKENDS = ("inmemory", "processes")

#: Transport names ``transport(...)`` resolves (besides explicit instances).
TRANSPORTS = ("inmemory", "tcp")


class BuildError(ValueError):
    """A builder chain described something the chosen backend cannot build."""


def system() -> "SystemBuilder":
    """Start describing a WebdamLog deployment (the entry point of the API)."""
    return SystemBuilder()


@dataclass
class _PeerSpec:
    """Everything the chain said about one peer, in declaration order."""

    name: str
    trusted: List[str] = field(default_factory=list)
    trust_all: bool = False
    auto_accept: Optional[bool] = None
    announce: bool = False
    schemas: List[RelationSchema] = field(default_factory=list)
    programs: List[str] = field(default_factory=list)
    rules: List[Union[str, Rule]] = field(default_factory=list)
    wrappers: List[object] = field(default_factory=list)
    facts: List[Union[str, Fact]] = field(default_factory=list)
    grants: List[Tuple[str, str, str]] = field(default_factory=list)
    declassifications: List[Tuple[str, str]] = field(default_factory=list)


class SystemBuilder:
    """Accumulates a deployment description; ``build()`` realises it."""

    def __init__(self):
        self._transport: Optional[Transport] = None
        self._transport_name: Optional[str] = None
        self._transport_options: dict = {}
        self._latency = 1
        self._drop_probability = 0.0
        self._seed: Optional[int] = 0
        self._transport_knobs_set = False
        self._default_trusted: Tuple[str, ...] = ()
        self._auto_accept = True
        self._strict_stage_inputs = False
        self._backend = "inmemory"
        self._scheduler: Optional[Scheduler] = None
        self._evaluation_mode = "incremental"
        self._provenance = False
        self._storage: Optional[str] = None
        self._storage_options: dict = {}
        self._planner: Optional[str] = None
        self._replication: Optional[str] = None
        self._specs: List[_PeerSpec] = []

    # -- system-wide configuration ------------------------------------- #

    def transport(self, transport: Union[str, Transport],
                  **options) -> "SystemBuilder":
        """Choose the transport the deployment runs over.

        Pass an explicit :class:`~repro.runtime.transport.Transport`
        instance, or a name:

        * ``"inmemory"`` — the deterministic in-memory transport (the
          default); ``options`` are its constructor arguments (``latency``,
          ``drop_probability``, ``seed``, ``shuffle_seed``, ...);
        * ``"tcp"`` — the asyncio TCP transport
          (:class:`~repro.net.tcp.TcpTransport`): every peer gets a gossip
          node and a real localhost socket, with SWIM failure detection and
          dynamic churn.  ``options`` are its constructor arguments
          (``log_path``, ``quiet_period``, ``gossip``, ``swim``, ``seed``,
          ...).

        Named transports are constructed at ``build()`` time, so one builder
        chain can be built more than once without sharing sockets.
        """
        if isinstance(transport, str):
            if transport not in TRANSPORTS:
                raise BuildError(
                    f"unknown transport {transport!r}; choose from "
                    f"{TRANSPORTS} (or pass a Transport instance)"
                )
            self._transport_name = transport
            self._transport_options = dict(options)
            self._transport = None
        else:
            if options:
                raise BuildError(
                    "transport options are only accepted with a named "
                    "transport; configure the explicit instance directly"
                )
            self._transport = transport
            self._transport_name = None
            self._transport_options = {}
        return self

    def latency(self, rounds: int) -> "SystemBuilder":
        """Delivery latency (in rounds) of the default in-memory transport."""
        self._latency = rounds
        self._transport_knobs_set = True
        return self

    def drop_probability(self, probability: float, seed: Optional[int] = None
                         ) -> "SystemBuilder":
        """Loss model of the default transport (for failure injection)."""
        self._drop_probability = probability
        if seed is not None:
            self._seed = seed
        self._transport_knobs_set = True
        return self

    def seed(self, seed: Optional[int]) -> "SystemBuilder":
        """Seed of the default transport's loss model."""
        self._seed = seed
        self._transport_knobs_set = True
        return self

    def default_trusted(self, *peers: str) -> "SystemBuilder":
        """Peers that every peer of the deployment trusts by default."""
        self._default_trusted = self._default_trusted + tuple(peers)
        return self

    def control_delegation(self, enabled: bool = True) -> "SystemBuilder":
        """Queue delegations from untrusted peers for explicit approval."""
        self._auto_accept = not enabled
        return self

    def auto_accept_delegations(self, enabled: bool = True) -> "SystemBuilder":
        """Install every incoming delegation immediately (the default)."""
        self._auto_accept = enabled
        return self

    def strict_stage_inputs(self, enabled: bool = True) -> "SystemBuilder":
        """Facts pushed to local intensional relations last one stage only."""
        self._strict_stage_inputs = enabled
        return self

    def backend(self, name: str) -> "SystemBuilder":
        """Choose the runtime backend: ``"inmemory"`` or ``"processes"``."""
        if name not in BACKENDS:
            raise BuildError(f"unknown backend {name!r}; choose from {BACKENDS}")
        self._backend = name
        return self

    def scheduler(self, scheduler: Union[str, Scheduler]) -> "SystemBuilder":
        """Choose the execution driver: ``"lockstep"`` (default), ``"reactive"``
        or ``"async"`` — or pass any :class:`~repro.runtime.scheduler.Scheduler`
        instance.  See the README's *Execution model* section for how to pick.
        """
        try:
            self._scheduler = resolve_scheduler(scheduler)
        except ValueError as exc:
            raise BuildError(str(exc)) from exc
        return self

    def evaluation(self, mode: str) -> "SystemBuilder":
        """Choose the per-peer fixpoint strategy: ``"incremental"`` (default,
        seminaive + hash indexes) or ``"naive"`` (the historical
        clear-and-recompute, kept as a differential/benchmark baseline).
        """
        if mode not in ("incremental", "naive"):
            raise BuildError(
                f"unknown evaluation mode {mode!r}; choose from "
                "('incremental', 'naive')"
            )
        self._evaluation_mode = mode
        return self

    def provenance(self, enabled: bool = True) -> "SystemBuilder":
        """Track why-provenance at every peer of the deployment.

        Each peer gets a :class:`~repro.provenance.graph.ProvenanceTracker`
        maintained incrementally by the engine; fact updates ship their
        derivations across peers, ``deployment.explain(peer, fact)`` answers
        why/lineage queries, and the :mod:`repro.acl` view policies can
        filter query results by lineage.
        """
        self._provenance = enabled
        return self

    def storage(self, name: str, **options) -> "SystemBuilder":
        """Choose the storage backend every peer's fact store runs on.

        * ``"memory"`` — plain Python dicts with hash indexes (the default);
        * ``"sqlite"`` — each peer keeps its relations in a SQLite database
          and rule bodies compile to single SQL statements executed in-store.
          Pass ``path="some/dir"`` to make the deployment **durable**: each
          peer gets its own database file ``<path>/<peer>.db``, facts, rules
          and delegations survive :meth:`~repro.api.facade.System.close` (or
          process death), and rebuilding the deployment over the same path
          restores and re-converges it.  Without a path SQLite runs on a
          private in-memory database (same SQL engine, no durability).

        When this method is not called, the ``REPRO_STORE_BACKEND``
        environment variable picks the backend (defaulting to ``memory``) —
        that is how CI runs the whole suite once per backend.
        """
        if name not in ("memory", "sqlite"):
            raise BuildError(
                f"unknown storage backend {name!r}; choose from "
                "('memory', 'sqlite')"
            )
        if name != "sqlite" and options:
            raise BuildError("storage options are only accepted for 'sqlite'")
        self._storage = name
        self._storage_options = dict(options)
        return self

    def planner(self, mode: str) -> "SystemBuilder":
        """Choose the cost-based query planner mode for every peer.

        * ``"off"`` — evaluate rule bodies in written order (the baseline);
        * ``"order"`` — reorder each rule's local body prefix by estimated
          cardinality before evaluation;
        * ``"magic"`` (default) — additionally rewrite bound-head view
          programs with a magic-set/demand transformation so only
          demand-reachable auxiliary facts are derived.

        When this method is not called, the ``REPRO_PLANNER`` environment
        variable picks the mode — that is how CI runs the whole suite once
        per mode.  See ``docs/planner.md``.
        """
        if mode not in PLANNER_MODES:
            raise BuildError(
                f"unknown planner mode {mode!r}; choose from {PLANNER_MODES}"
            )
        self._planner = mode
        return self

    def replication(self, mode: str) -> "SystemBuilder":
        """Choose how peer-to-peer updates are replicated.

        * ``"reliable"`` (default) — raw fact/delegation messages, assuming
          the transport delivers each exactly once and in order (true of the
          default in-memory transport without failure injection);
        * ``"causal"`` — dotted delta envelopes with causal contexts and
          anti-entropy (:mod:`repro.replication`): applying an envelope is
          an idempotent, commutative causal join, so the deployment
          converges to the same fixpoint under message loss, duplication
          and reordering.

        When this method is not called, the ``REPRO_REPLICATION``
        environment variable picks the mode — that is how CI runs the whole
        suite once per mode.  See ``docs/replication.md``.
        """
        if mode not in REPLICATION_MODES:
            raise BuildError(
                f"unknown replication mode {mode!r}; choose from "
                f"{REPLICATION_MODES}"
            )
        self._replication = mode
        return self

    # -- peers ----------------------------------------------------------- #

    def peer(self, name: str) -> "PeerBuilder":
        """Introduce a peer; subsequent peer-scoped calls configure it."""
        if any(spec.name == name for spec in self._specs):
            raise BuildError(f"peer {name!r} declared twice")
        spec = _PeerSpec(name=name)
        self._specs.append(spec)
        return PeerBuilder(self, spec)

    # -- realisation ------------------------------------------------------ #

    def build(self) -> Union[System, ProcessSystem]:
        """Assemble the described deployment and return its facade."""
        if self._backend == "processes":
            return self._build_processes()
        return self._build_inmemory()

    def _build_inmemory(self) -> System:
        if self._transport is not None and self._transport_knobs_set:
            raise BuildError(
                "latency/drop_probability/seed configure the default in-memory "
                "transport and have no effect on an explicit transport(...); "
                "configure the transport instance instead"
            )
        transport = self._transport if self._transport is not None else (
            self._make_named_transport()
        )
        runtime = WebdamLogSystem(
            default_trusted=self._default_trusted,
            auto_accept_delegations=self._auto_accept,
            strict_stage_inputs=self._strict_stage_inputs,
            transport=transport,
            scheduler=self._scheduler,
            evaluation_mode=self._evaluation_mode,
            provenance=self._provenance,
            storage=self._storage,
            storage_options=dict(self._storage_options),
            planner=self._planner,
            replication=self._replication,
        )
        built = System(runtime)
        for spec in self._specs:
            handle = built.add_peer(
                spec.name, trusted=tuple(spec.trusted),
                trust_all=spec.trust_all,
                auto_accept_delegations=spec.auto_accept,
                announce=spec.announce,
            )
            self._populate(handle, spec)
        return built

    def _make_named_transport(self) -> Transport:
        if self._transport_name == "tcp":
            if self._transport_knobs_set:
                raise BuildError(
                    "latency/drop_probability/seed configure the in-memory "
                    "transport; tune the TCP transport through "
                    'transport("tcp", gossip=..., swim=..., seed=...) instead'
                )
            # Imported lazily: the net subsystem (asyncio servers, gossip,
            # SWIM) is only paid for by deployments that ask for it.
            from repro.net.tcp import TcpTransport
            return TcpTransport(**self._transport_options)
        options = {
            "latency": self._latency,
            "drop_probability": self._drop_probability,
            "seed": self._seed,
        }
        options.update(self._transport_options)
        return InMemoryTransport(**options)

    def _populate(self, handle: PeerHandle, spec: _PeerSpec) -> None:
        for schema in spec.schemas:
            handle.declare(schema)
        for program in spec.programs:
            handle.load_program(program)
        for rule in spec.rules:
            handle.add_rule(rule)
        for wrapper in spec.wrappers:
            handle.attach_wrapper(wrapper)
        for fact in spec.facts:
            handle.insert(fact)
        for relation, grantee, privilege in spec.grants:
            handle.grant(relation, grantee, privilege)
        for view_relation, grantee in spec.declassifications:
            handle.declassify(view_relation, grantee)

    def _build_processes(self) -> ProcessSystem:
        if self._transport is not None or self._transport_name is not None:
            raise BuildError("the processes backend manages its own transport")
        if self._storage is not None and self._storage != "memory":
            raise BuildError(
                "the processes backend does not support explicit storage "
                "configuration yet; set REPRO_STORE_BACKEND in the worker "
                "environment instead"
            )
        if self._scheduler is not None:
            raise BuildError(
                "the processes backend manages its own scheduling (each worker "
                "process drives its own engine); scheduler(...) requires the "
                "in-memory backend"
            )
        if self._planner is not None:
            raise BuildError(
                "the processes backend does not support explicit planner "
                "configuration; set REPRO_PLANNER in the worker environment "
                "instead"
            )
        if self._replication is not None and self._replication != "reliable":
            raise BuildError(
                "the processes backend runs reliable replication only (its "
                "pipe transport delivers exactly once, in order); causal "
                "replication requires the in-memory backend"
            )
        network = ProcessNetwork(provenance=self._provenance)
        try:
            for spec in self._specs:
                if (spec.wrappers or spec.schemas or spec.trusted
                        or spec.trust_all or spec.grants
                        or spec.declassifications):
                    raise BuildError(
                        f"peer {spec.name!r}: the processes backend supports "
                        "programs, rules and facts only (wrappers, schemas, "
                        "trust and access-control grants require the "
                        "in-memory backend)"
                    )
                network.spawn_peer(spec.name,
                                   "\n".join(spec.programs) or None)
                for rule in spec.rules:
                    if not isinstance(rule, str):
                        raise BuildError("processes backend takes rules as text")
                    network.add_rule(spec.name, rule)
                for fact in spec.facts:
                    if isinstance(fact, str):
                        raise BuildError("processes backend takes Fact objects")
                    network.insert_fact(spec.name, fact)
        except Exception:
            network.shutdown()
            raise
        return ProcessSystem(network)


class PeerBuilder:
    """The peer-scoped section of a builder chain.

    Every configuration method returns ``self``; ``peer(...)`` and
    ``build()`` hand control back to the owning :class:`SystemBuilder`, so
    chains read linearly.  ``done()`` returns the system builder explicitly.
    """

    def __init__(self, parent: SystemBuilder, spec: _PeerSpec):
        self._parent = parent
        self._spec = spec

    # -- peer-scoped configuration ----------------------------------------- #

    def trusts(self, *peers: str) -> "PeerBuilder":
        """Trust delegations from the given peers."""
        self._spec.trusted.extend(peers)
        return self

    def trust_all(self) -> "PeerBuilder":
        """Trust delegations from everybody."""
        self._spec.trust_all = True
        return self

    def wrapper(self, wrapper: object) -> "PeerBuilder":
        """Attach a wrapper (simulated external service) to this peer."""
        self._spec.wrappers.append(wrapper)
        return self

    def program(self, text: str) -> "PeerBuilder":
        """Load a WebdamLog program text at this peer."""
        self._spec.programs.append(text)
        return self

    def rule(self, rule: Union[str, Rule]) -> "PeerBuilder":
        """Add one rule to the peer's own program."""
        self._spec.rules.append(rule)
        return self

    def fact(self, fact: Union[str, Fact]) -> "PeerBuilder":
        """Insert one base fact at this peer."""
        self._spec.facts.append(fact)
        return self

    def schema(self, schema: RelationSchema) -> "PeerBuilder":
        """Declare a relation schema at this peer."""
        self._spec.schemas.append(schema)
        return self

    def grant(self, relation: str, grantee: str,
              privilege: str = "read") -> "PeerBuilder":
        """Grant an access-control privilege on one of this peer's relations.

        ``relation`` may be bare (qualified with the peer's name at build
        time); grants feed the deployment's
        :class:`~repro.acl.policies.PolicySet`, which ``query(...,
        viewer=...)`` live views filter through.  In-memory backend only.
        """
        self._spec.grants.append((relation, grantee, privilege))
        return self

    def declassify(self, view_relation: str, grantee: str = "*") -> "PeerBuilder":
        """Declassify a derived relation (view) of this peer for ``grantee``."""
        self._spec.declassifications.append((view_relation, grantee))
        return self

    def auto_accept_delegations(self, enabled: bool = True) -> "PeerBuilder":
        """Override the system-wide delegation-acceptance policy for this peer."""
        self._spec.auto_accept = enabled
        return self

    def announce(self, enabled: bool = True) -> "PeerBuilder":
        """Send a join message to the peers declared before this one."""
        self._spec.announce = enabled
        return self

    # -- chain continuation -------------------------------------------------- #

    def peer(self, name: str) -> "PeerBuilder":
        """Introduce the next peer of the deployment."""
        return self._parent.peer(name)

    def done(self) -> SystemBuilder:
        """Return to the system-level builder."""
        return self._parent

    def build(self) -> Union[System, ProcessSystem]:
        """Assemble the deployment described so far."""
        return self._parent.build()
