"""``repro.api`` — the one way to construct and drive a WebdamLog deployment.

The paper's runtime pieces (peers, trust stores, wrappers, programs,
transports) used to be assembled by hand in every example and benchmark.
This package is the public facade over all of them:

* :func:`system` / :class:`SystemBuilder` — a fluent builder::

      deployment = (system()
                    .peer("alice").trusts("bob").program("...")
                    .peer("bob").wrapper(FacebookUserWrapper(...))
                    .build())

* :class:`System` / :class:`PeerHandle` — the built deployment:
  ``converge()`` / ``step()`` / ``await aconverge()`` (driven by the
  scheduler chosen with ``system().scheduler("reactive")`` — lockstep
  rounds, event-driven activation, or asyncio; see
  :mod:`repro.runtime.scheduler`), ``query()``, ``subscribe()``, stats and
  totals, per-peer operations.
* :class:`Transport` — the protocol the runtime moves messages through, with
  :class:`InMemoryTransport` (deterministic rounds) and
  :class:`RecordingTransport` (event-logging decorator) shipped here; pass
  any implementation — or a name — to ``system().transport(...)``:
  ``transport("tcp")`` builds the asyncio TCP transport
  (:class:`TcpTransport`), where every peer runs a gossip node on a real
  localhost socket with SWIM membership and failure detection (see
  :mod:`repro.net` and ``docs/net-protocol.md``).
* :class:`LiveView` — the answer to a declarative query
  (``deployment.query(at, "p@alice($x,$y), not q@alice($x)")``): compiled
  into an incrementally-maintained view relation inside the owning peer's
  engine, readable, streamable, observable (``on_change``), explainable and
  ACL-filterable through one handle (see :mod:`repro.api.views`).
* :class:`QueryHandle` / :class:`Subscription` — read results and watch
  derivations without touching engine internals.

Direct construction of :class:`~repro.runtime.peer.Peer` and
:class:`~repro.runtime.system.WebdamLogSystem` keeps working but is
deprecated as a public entry point; new code should start from
:func:`system`.
"""

from repro.runtime.inmemory import InMemoryTransport, NetworkStats
from repro.runtime.scheduler import (
    AsyncScheduler,
    LockstepScheduler,
    ReactiveScheduler,
    RoundReport,
    RunSummary,
    Scheduler,
)
from repro.provenance.graph import Explanation
from repro.net.events import NetEventLog, read_events
from repro.net.gossip import GossipConfig
from repro.net.membership import SwimConfig
from repro.net.tcp import TcpTransport
from repro.runtime.transport import RecordingTransport, Transport, TransportEvent
from repro.api.builder import BuildError, PeerBuilder, SystemBuilder, system
from repro.api.errors import ReproApiError
from repro.api.facade import PeerHandle, ProcessSystem, System
from repro.api.query import FactCallback, QueryHandle, Subscription
from repro.api.views import CompiledView, LiveView, compile_query

__all__ = [
    "ReproApiError",
    "LiveView",
    "CompiledView",
    "compile_query",
    "system",
    "SystemBuilder",
    "PeerBuilder",
    "BuildError",
    "System",
    "PeerHandle",
    "ProcessSystem",
    "Transport",
    "TransportEvent",
    "InMemoryTransport",
    "RecordingTransport",
    "TcpTransport",
    "NetEventLog",
    "read_events",
    "GossipConfig",
    "SwimConfig",
    "NetworkStats",
    "Scheduler",
    "LockstepScheduler",
    "ReactiveScheduler",
    "AsyncScheduler",
    "RoundReport",
    "RunSummary",
    "QueryHandle",
    "Subscription",
    "FactCallback",
    "Explanation",
]
