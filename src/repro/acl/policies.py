"""The access-control model sketched in Section 2 of the paper.

The model ("under active investigation" in 2013) combines:

* **discretionary** control — owners grant privileges on the stored
  relations they own (:class:`Grant`, :meth:`AccessControlPolicy.grant`);
* **mandatory** / derived control — for a derived relation (a view), the
  default policy is computed from the provenance of its base relations: a
  peer may read a derived fact only if it may read *every* base relation in
  that fact's lineage (:class:`ViewPolicy`);
* **declassification** — the owner of a view may override the derived policy
  and grant access anyway (:meth:`AccessControlPolicy.declassify`).

The model subsumes SQL-style view-based access control: granting ``READ`` on
a view without declassification still requires access to the underlying base
relations, while declassifying the view makes it behave like a SQL view owned
by a definer with sufficient rights.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.core.errors import AccessControlError
from repro.core.facts import Fact
from repro.provenance.graph import ProvenanceGraph


class Privilege(enum.Enum):
    """Privileges that can be granted on a relation."""

    READ = "read"
    WRITE = "write"
    GRANT = "grant"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Grant:
    """A discretionary grant: ``grantee`` may exercise ``privilege`` on ``relation``."""

    relation: str
    grantee: str
    privilege: Privilege
    grantor: str

    def __str__(self) -> str:
        return f"{self.grantor} grants {self.privilege} on {self.relation} to {self.grantee}"


#: Wildcard grantee meaning "every peer".
PUBLIC = "*"


class AccessControlPolicy:
    """Discretionary grants plus view declassification for one peer's relations.

    The policy object belongs to ``owner``; the owner implicitly holds every
    privilege on every relation located at itself.
    """

    def __init__(self, owner: str):
        self.owner = owner
        self._grants: Set[Grant] = set()
        self._declassified: Dict[str, Set[str]] = {}
        #: Bumped on every grant/revoke/declassify; :class:`PolicyEngine`
        #: keys its decision caches off it.
        self.version = 0

    # ------------------------------------------------------------------ #
    # discretionary grants
    # ------------------------------------------------------------------ #

    def grant(self, relation: str, grantee: str, privilege: Privilege,
              grantor: Optional[str] = None) -> Grant:
        """Grant a privilege on ``relation`` (qualified ``name@peer``) to ``grantee``.

        Only the owner, or a peer holding the ``GRANT`` privilege on the
        relation, may grant.
        """
        grantor = grantor or self.owner
        if grantor != self.owner and not self._holds(relation, grantor, Privilege.GRANT):
            raise AccessControlError(
                f"{grantor} may not grant on {relation}: no GRANT privilege"
            )
        created = Grant(relation=relation, grantee=grantee, privilege=privilege,
                        grantor=grantor)
        if created not in self._grants:
            self._grants.add(created)
            self.version += 1
        return created

    def revoke(self, relation: str, grantee: str,
               privilege: Optional[Privilege] = None) -> int:
        """Revoke grants; returns how many grant entries were removed."""
        to_remove = {
            g for g in self._grants
            if g.relation == relation and g.grantee == grantee
            and (privilege is None or g.privilege == privilege)
        }
        if to_remove:
            self._grants -= to_remove
            self.version += 1
        return len(to_remove)

    def grants(self) -> Tuple[Grant, ...]:
        """Every grant issued so far, in a deterministic order."""
        return tuple(sorted(self._grants, key=lambda g: (g.relation, g.grantee,
                                                         g.privilege.value)))

    def _holds(self, relation: str, peer: str, privilege: Privilege) -> bool:
        if peer == self.owner:
            return True
        for grant in self._grants:
            if grant.relation == relation and grant.privilege == privilege \
                    and grant.grantee in (peer, PUBLIC):
                return True
        return False

    def can_read(self, relation: str, peer: str) -> bool:
        """``True`` when ``peer`` holds ``READ`` on ``relation``."""
        return self._holds(relation, peer, Privilege.READ)

    def can_write(self, relation: str, peer: str) -> bool:
        """``True`` when ``peer`` holds ``WRITE`` on ``relation``."""
        return self._holds(relation, peer, Privilege.WRITE)

    # ------------------------------------------------------------------ #
    # view policies derived from provenance
    # ------------------------------------------------------------------ #

    def declassify(self, view_relation: str, grantee: str = PUBLIC) -> None:
        """Override the provenance-derived policy of ``view_relation`` for ``grantee``."""
        grantees = self._declassified.setdefault(view_relation, set())
        if grantee not in grantees:
            grantees.add(grantee)
            self.version += 1

    def declassified_grantees(self, view_relation: str) -> FrozenSet[str]:
        """The grantees benefiting from a declassification of ``view_relation``."""
        return frozenset(self._declassified.get(view_relation, ()))

    def is_declassified(self, view_relation: str, peer: str) -> bool:
        """``True`` when ``peer`` benefits from a declassification of the view."""
        grantees = self._declassified.get(view_relation, set())
        return PUBLIC in grantees or peer in grantees

    def can_read_fact(self, fact: Fact, peer: str,
                      provenance: Optional[ProvenanceGraph] = None) -> bool:
        """Decide whether ``peer`` may read a (possibly derived) fact.

        * For a base fact, the discretionary policy of its relation applies.
        * For a derived fact, the default policy requires ``peer`` to be able
          to read **every** base relation in the fact's lineage, unless the
          view has been declassified for ``peer`` (in which case a ``READ``
          grant on the view itself, or ownership, suffices).
        """
        relation = fact.qualified_relation
        if provenance is None or not provenance.is_derived(fact):
            return self.can_read(relation, peer)
        if self.is_declassified(relation, peer):
            return peer == self.owner or self.can_read(relation, peer)
        base_relations = provenance.base_relations(fact)
        return all(self.can_read(base, peer) for base in base_relations)

    def readable_facts(self, facts: Iterable[Fact], peer: str,
                       provenance: Optional[ProvenanceGraph] = None) -> Tuple[Fact, ...]:
        """Filter ``facts`` down to those ``peer`` may read."""
        return tuple(f for f in facts if self.can_read_fact(f, peer, provenance))


@dataclass
class ViewPolicy:
    """The effective read policy of one derived relation (view).

    ``base_relations`` is the set of base relations the view draws from; the
    effective reader set is the intersection of the readers of every base
    relation, plus any declassification grantees.
    """

    view_relation: str
    base_relations: FrozenSet[str]
    declassified_for: FrozenSet[str] = frozenset()

    @classmethod
    def derive(cls, view_relation: str, provenance: ProvenanceGraph,
               facts: Iterable[Fact],
               declassified_for: Iterable[str] = ()) -> "ViewPolicy":
        """Compute the default policy of a view from the provenance of its facts."""
        bases: Set[str] = set()
        for fact in facts:
            bases |= set(provenance.base_relations(fact))
        return cls(view_relation=view_relation, base_relations=frozenset(bases),
                   declassified_for=frozenset(declassified_for))

    def readers(self, policy: AccessControlPolicy,
                candidate_peers: Iterable[str]) -> Tuple[str, ...]:
        """Which of ``candidate_peers`` may read the whole view under ``policy``."""
        allowed = []
        for peer in candidate_peers:
            if peer in self.declassified_for or PUBLIC in self.declassified_for:
                allowed.append(peer)
                continue
            if all(policy.can_read(base, peer) for base in self.base_relations):
                allowed.append(peer)
        return tuple(sorted(allowed))


class PolicyEngine:
    """Cached access-control decisions over a maintained provenance graph.

    :meth:`AccessControlPolicy.can_read_fact` re-derives the lineage of a
    fact on every check; this engine is the scalable front-end for query
    filtering: per-fact checks probe the provenance graph's maintained
    lineage index (O(1) amortised) and the resulting decisions are cached by
    ``(peer, base-relation set)``.  Both caches are **delta-invalidated**:

    * grant / revoke / declassify bumps
      :attr:`AccessControlPolicy.version` — decision and view-policy caches
      are dropped;
    * any provenance mutation bumps
      :attr:`~repro.provenance.graph.ProvenanceGraph.version` — the derived
      :class:`ViewPolicy` cache is dropped (per-fact decisions stay valid:
      they are keyed by the base-relation set, which the graph's own lineage
      index already re-derives precisely).

    ``provenance`` may be a :class:`~repro.provenance.graph.ProvenanceGraph`,
    a :class:`~repro.provenance.graph.ProvenanceTracker` (its graph is used)
    or ``None`` (every fact is treated as a base fact).
    """

    def __init__(self, policy: AccessControlPolicy, provenance=None):
        self.policy = policy
        self.provenance = provenance
        self._policy_version = policy.version
        self._graph_version: Optional[int] = None
        # (peer, frozenset of base relations) -> decision; policy-dependent only.
        self._decisions: Dict[Tuple[str, FrozenSet[str]], bool] = {}
        # (relation, peer) -> discretionary READ decision; policy-dependent only.
        self._relation_reads: Dict[Tuple[str, str], bool] = {}
        # view relation -> derived ViewPolicy; graph- and policy-dependent.
        self._view_policies: Dict[str, ViewPolicy] = {}

    def _graph(self) -> Optional[ProvenanceGraph]:
        return getattr(self.provenance, "graph", self.provenance)

    def _sync(self) -> Optional[ProvenanceGraph]:
        """Drop stale caches when the policy or the graph changed."""
        if self.policy.version != self._policy_version:
            self._policy_version = self.policy.version
            self._decisions.clear()
            self._relation_reads.clear()
            self._view_policies.clear()
        graph = self._graph()
        graph_version = None if graph is None else graph.version
        if graph_version != self._graph_version:
            self._graph_version = graph_version
            self._view_policies.clear()
        return graph

    def _can_read_relation(self, relation: str, peer: str) -> bool:
        key = (relation, peer)
        decision = self._relation_reads.get(key)
        if decision is None:
            decision = self._relation_reads[key] = self.policy.can_read(relation, peer)
        return decision

    def can_read_fact(self, fact: Fact, peer: str) -> bool:
        """Decide whether ``peer`` may read ``fact`` (same semantics as
        :meth:`AccessControlPolicy.can_read_fact`, at O(1) per fact)."""
        graph = self._sync()
        relation = fact.qualified_relation
        if graph is None or not graph.is_derived(fact):
            return self._can_read_relation(relation, peer)
        if self.policy.is_declassified(relation, peer):
            return peer == self.policy.owner or self._can_read_relation(relation, peer)
        bases = graph.base_relations(fact)
        key = (peer, bases)
        decision = self._decisions.get(key)
        if decision is None:
            decision = self._decisions[key] = all(
                self._can_read_relation(base, peer) for base in bases)
        return decision

    def filter_readable(self, facts: Iterable[Fact], peer: str) -> Tuple[Fact, ...]:
        """Filter ``facts`` down to those ``peer`` may read."""
        return tuple(fact for fact in facts if self.can_read_fact(fact, peer))

    def view_policy(self, view_relation: str,
                    facts: Optional[Iterable[Fact]] = None) -> ViewPolicy:
        """The effective :class:`ViewPolicy` of ``view_relation``, cached.

        Derived from the provenance of ``facts`` (default: every fact of the
        view currently in the graph) and re-derived only after a provenance
        or policy delta invalidated it.  A policy derived from an explicit
        ``facts`` subset describes only that subset and is **not** cached —
        caching it would silently narrow the base-relation set later
        whole-view calls decide with.
        """
        graph = self._sync()
        whole_view = facts is None
        if whole_view:
            cached = self._view_policies.get(view_relation)
            if cached is not None:
                return cached
        if graph is None:
            derived = ViewPolicy(
                view_relation=view_relation, base_relations=frozenset(),
                declassified_for=self.policy.declassified_grantees(view_relation),
            )
        else:
            if whole_view:
                facts = graph.facts_of(view_relation)
            derived = ViewPolicy.derive(
                view_relation, graph, facts,
                declassified_for=self.policy.declassified_grantees(view_relation),
            )
        if whole_view:
            self._view_policies[view_relation] = derived
        return derived


class PolicySet:
    """Per-owner access-control state of a whole deployment.

    The :mod:`repro.api` facade filters query answers and live views by a
    ``viewer=`` peer; the decisions are made by the *owning* peer's
    :class:`AccessControlPolicy`, accelerated by a cached
    :class:`PolicyEngine` over that peer's (optional) provenance tracker.
    This registry creates both lazily per owner and keeps each engine bound
    to the owner's current tracker (``provenance_resolver`` is re-consulted
    on every access, so enabling provenance after the first query is picked
    up transparently).
    """

    def __init__(self, provenance_resolver: Optional[Callable[[str], object]] = None):
        self._provenance_resolver = provenance_resolver or (lambda owner: None)
        self._policies: Dict[str, AccessControlPolicy] = {}
        self._engines: Dict[str, PolicyEngine] = {}

    def policy(self, owner: str) -> AccessControlPolicy:
        """The discretionary policy of ``owner`` (created on first use)."""
        policy = self._policies.get(owner)
        if policy is None:
            policy = self._policies[owner] = AccessControlPolicy(owner)
        return policy

    def engine(self, owner: str) -> PolicyEngine:
        """The cached decision engine of ``owner``, bound to its tracker."""
        provenance = self._provenance_resolver(owner)
        engine = self._engines.get(owner)
        if engine is None or engine.provenance is not provenance:
            engine = self._engines[owner] = PolicyEngine(self.policy(owner),
                                                         provenance)
        return engine

    def filter_readable(self, owner: str, facts: Iterable[Fact],
                        viewer: str) -> Tuple[Fact, ...]:
        """Filter ``facts`` of relations owned by ``owner`` down to what
        ``viewer`` may read under the owner's policy."""
        return self.engine(owner).filter_readable(facts, viewer)
