"""Control of delegation: the pending-queue model demonstrated in the paper.

"The demonstration of Wepic will provide a simplified model for control of
delegation, in which each delegation sent by an untrusted peer will be
pending in a queue until the user explicitly accepts it via the Web
interface."  (Section 3 of the paper.)

:class:`DelegationController` sits between the transport and a peer's engine:

* a delegation install from a **trusted** delegator is forwarded to the
  engine immediately (decision ``AUTO_ACCEPTED``);
* a delegation install from an **untrusted** delegator is parked in the
  pending queue (decision ``PENDING``) and a notification is recorded — the
  headless UI model and Figure-3 benchmark read those notifications;
* the user later calls :meth:`approve` or :meth:`reject`;
* a retraction for a delegation that is still pending simply removes it from
  the queue; a retraction for an installed delegation is forwarded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.acl.trust import TrustStore
from repro.core.engine import WebdamLogEngine
from repro.core.errors import AccessControlError
from repro.core.rules import Rule


class DelegationDecision(enum.Enum):
    """Outcome of submitting a delegation to the controller."""

    AUTO_ACCEPTED = "auto-accepted"
    PENDING = "pending"
    APPROVED = "approved"
    REJECTED = "rejected"
    RETRACTED = "retracted"


@dataclass
class PendingDelegation:
    """A delegation waiting for explicit user approval."""

    delegation_id: str
    delegator: str
    rule: Rule
    received_at_round: Optional[int] = None

    def describe(self) -> str:
        """One-line description shown in the pending-delegations frame of the UI."""
        return f"{self.delegator} wants to install: {self.rule}"


@dataclass
class DelegationEvent:
    """An entry of the controller's audit log."""

    delegation_id: str
    delegator: str
    decision: DelegationDecision
    detail: str = ""


class DelegationController:
    """Per-peer mediator between incoming delegations and the engine.

    Parameters
    ----------
    engine:
        The peer's engine; approved delegations are forwarded to it.
    trust:
        The peer's :class:`~repro.acl.trust.TrustStore`.  When omitted, a
        store trusting only the peer itself is used (everything becomes
        pending).
    auto_accept_all:
        Convenience switch that bypasses the queue entirely (used by
        benchmarks that measure the no-control baseline).
    """

    def __init__(self, engine: WebdamLogEngine, trust: Optional[TrustStore] = None,
                 auto_accept_all: bool = False):
        self.engine = engine
        self.trust = trust if trust is not None else TrustStore(engine.peer)
        self.auto_accept_all = auto_accept_all
        self._pending: Dict[str, PendingDelegation] = {}
        self._log: List[DelegationEvent] = []
        self._notifications: List[str] = []

    # ------------------------------------------------------------------ #
    # incoming messages
    # ------------------------------------------------------------------ #

    def submit(self, delegator: str, delegation_id: str, rule: Rule,
               round_number: Optional[int] = None) -> DelegationDecision:
        """Handle an incoming delegation install."""
        if self.auto_accept_all or self.trust.is_trusted(delegator):
            self.engine.receive_delegation(delegator, delegation_id, rule)
            self._log.append(DelegationEvent(delegation_id, delegator,
                                             DelegationDecision.AUTO_ACCEPTED))
            return DelegationDecision.AUTO_ACCEPTED
        pending = PendingDelegation(delegation_id=delegation_id, delegator=delegator,
                                    rule=rule, received_at_round=round_number)
        self._pending[delegation_id] = pending
        self._log.append(DelegationEvent(delegation_id, delegator,
                                         DelegationDecision.PENDING))
        self._notifications.append(pending.describe())
        return DelegationDecision.PENDING

    def submit_retraction(self, delegator: str, delegation_id: str) -> DelegationDecision:
        """Handle an incoming delegation retraction."""
        pending = self._pending.pop(delegation_id, None)
        if pending is not None:
            if pending.delegator != delegator:
                # Someone else trying to retract a pending delegation: put it back.
                self._pending[delegation_id] = pending
                raise AccessControlError(
                    f"peer {delegator} cannot retract a delegation submitted by "
                    f"{pending.delegator}"
                )
            self._log.append(DelegationEvent(delegation_id, delegator,
                                             DelegationDecision.RETRACTED,
                                             "retracted while pending"))
            return DelegationDecision.RETRACTED
        self.engine.receive_delegation_retraction(delegator, delegation_id)
        self._log.append(DelegationEvent(delegation_id, delegator,
                                         DelegationDecision.RETRACTED))
        return DelegationDecision.RETRACTED

    # ------------------------------------------------------------------ #
    # user decisions
    # ------------------------------------------------------------------ #

    def pending(self) -> Tuple[PendingDelegation, ...]:
        """The delegations currently awaiting approval (deterministic order)."""
        return tuple(sorted(self._pending.values(), key=lambda p: p.delegation_id))

    def pending_from(self, delegator: str) -> Tuple[PendingDelegation, ...]:
        """Pending delegations submitted by one delegator."""
        return tuple(p for p in self.pending() if p.delegator == delegator)

    def approve(self, delegation_id: str) -> PendingDelegation:
        """Approve a pending delegation: the rule is installed at the engine."""
        pending = self._pending.pop(delegation_id, None)
        if pending is None:
            raise AccessControlError(f"no pending delegation with id {delegation_id!r}")
        self.engine.receive_delegation(pending.delegator, pending.delegation_id, pending.rule)
        self._log.append(DelegationEvent(delegation_id, pending.delegator,
                                         DelegationDecision.APPROVED))
        return pending

    def approve_all(self, delegator: Optional[str] = None) -> List[PendingDelegation]:
        """Approve every pending delegation (optionally restricted to one delegator)."""
        approved = []
        for pending in list(self.pending()):
            if delegator is None or pending.delegator == delegator:
                approved.append(self.approve(pending.delegation_id))
        return approved

    def reject(self, delegation_id: str) -> PendingDelegation:
        """Reject a pending delegation: the rule is discarded."""
        pending = self._pending.pop(delegation_id, None)
        if pending is None:
            raise AccessControlError(f"no pending delegation with id {delegation_id!r}")
        self._log.append(DelegationEvent(delegation_id, pending.delegator,
                                         DelegationDecision.REJECTED))
        return pending

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def notifications(self, clear: bool = False) -> Tuple[str, ...]:
        """Human-readable notifications of pending delegations (Figure 3's banner)."""
        notes = tuple(self._notifications)
        if clear:
            self._notifications.clear()
        return notes

    def log(self) -> Tuple[DelegationEvent, ...]:
        """The full audit log of decisions taken by this controller."""
        return tuple(self._log)

    def counts(self) -> Dict[str, int]:
        """Counters per decision kind (used by the Figure-3 benchmark)."""
        counters: Dict[str, int] = {decision.value: 0 for decision in DelegationDecision}
        for event in self._log:
            counters[event.decision.value] += 1
        counters["pending_now"] = len(self._pending)
        return counters
