"""Trust relationships between peers.

The demo's simplified model for controlling delegation needs only a binary
notion of trust: delegations from *trusted* peers are installed immediately,
delegations from *untrusted* peers are queued for explicit approval.  The
paper states that "by default, all peers except the sigmod peer will be
considered untrusted"; :meth:`TrustStore.demo_default` builds exactly that
configuration.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set


class TrustStore:
    """The set of peers that one peer trusts.

    A trust store belongs to a single peer (``owner``).  The owner always
    trusts itself.  Trust is directional and not transitive.
    """

    def __init__(self, owner: str, trusted: Iterable[str] = (),
                 trust_all: bool = False):
        self.owner = owner
        self._trusted: Set[str] = set(trusted)
        self._trusted.add(owner)
        self.trust_all = trust_all

    @classmethod
    def demo_default(cls, owner: str, sigmod_peer: str = "sigmod") -> "TrustStore":
        """The configuration used in the demonstration: only ``sigmod`` is trusted."""
        return cls(owner, trusted=[sigmod_peer])

    def is_trusted(self, peer: str) -> bool:
        """``True`` when ``peer`` is trusted by the owner."""
        return self.trust_all or peer in self._trusted

    def trust(self, peer: str) -> None:
        """Mark ``peer`` as trusted."""
        self._trusted.add(peer)

    def untrust(self, peer: str) -> None:
        """Remove ``peer`` from the trusted set (the owner itself cannot be untrusted)."""
        if peer != self.owner:
            self._trusted.discard(peer)

    def trusted_peers(self) -> FrozenSet[str]:
        """The current trusted set (including the owner)."""
        return frozenset(self._trusted)

    def __contains__(self, peer: str) -> bool:
        return self.is_trusted(peer)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TrustStore(owner={self.owner!r}, trusted={sorted(self._trusted)!r})"
