"""Access control for WebdamLog.

Two layers are reproduced:

* **Control of delegation** (demonstrated in the paper): each delegation sent
  by an *untrusted* peer is held in a pending queue until the receiving user
  explicitly accepts it through the interface
  (:class:`~repro.acl.delegation_control.DelegationController`).  By default
  all peers except ``sigmod`` are untrusted, exactly as in the demo.
* The **access-control model under investigation** sketched in Section 2 of
  the paper: discretionary grants on stored relations, default policies for
  derived relations (views) computed from the provenance of their base
  relations, and explicit declassification overrides
  (:mod:`repro.acl.policies`).
"""

from repro.acl.trust import TrustStore
from repro.acl.delegation_control import (
    DelegationController,
    DelegationDecision,
    PendingDelegation,
)
from repro.acl.policies import (
    AccessControlPolicy,
    Grant,
    PolicyEngine,
    PolicySet,
    Privilege,
    ViewPolicy,
)

__all__ = [
    "TrustStore",
    "DelegationController",
    "DelegationDecision",
    "PendingDelegation",
    "AccessControlPolicy",
    "Grant",
    "PolicyEngine",
    "PolicySet",
    "Privilege",
    "ViewPolicy",
]
